// Fleet protocol tests: wire-format round trips and fuzzing (same harness
// as tests/persistence_test.cc), LoopbackTransport semantics, and the
// acceptance criteria of the distributed campaign — a fault-free loopback
// fleet is byte-identical to the in-process campaign under cell scopes, and
// a killed worker's cell is re-queued without double-counting any probe.
// The TSan CI job runs this binary to pin the protocol data-race-free.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/json_reader.h"
#include "fleet/fleet.h"
#include "fleet/messages.h"
#include "orchestrator/campaign.h"
#include "orchestrator/campaign_report.h"
#include "orchestrator/checkpoint.h"
#include "orchestrator/journal.h"
#include "sim/subsystem.h"
#include "workload/engine.h"

namespace collie::fleet {
namespace {

using core::JsonError;
using core::JsonValue;
using orchestrator::Campaign;
using orchestrator::CampaignConfig;
using orchestrator::CampaignResult;
using orchestrator::CellResult;
using orchestrator::PoolEntry;
using orchestrator::ShareScope;
using std::chrono::milliseconds;

workload::EngineOptions fast_engine_opts() {
  workload::EngineOptions opts;
  opts.run_functional_pass = false;
  return opts;
}

CampaignConfig small_config() {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag};
  config.seeds_per_cell = 2;  // 4 cells
  config.budget.seconds = 0.05 * 3600.0;
  config.campaign_seed = 17;
  config.share = ShareScope::kCell;
  config.workers = 2;
  config.engine = fast_engine_opts();
  return config;
}

// A finished small campaign: source of realistic CellResults (with found
// anomalies and MFS entries) for the wire-format tests.
const CampaignResult& reference_result() {
  static const CampaignResult result = [] {
    return Campaign(small_config()).run();
  }();
  return result;
}

// The CellResult with the most payload (found anomalies) — the most
// interesting document to round-trip and fuzz.
const CellResult& richest_cell() {
  const CampaignResult& result = reference_result();
  const CellResult* best = &result.cells.front();
  for (const CellResult& cr : result.cells) {
    if (cr.result.found.size() > best->result.found.size()) best = &cr;
  }
  return *best;
}

std::vector<PoolEntry> sample_entries() {
  std::vector<PoolEntry> entries;
  for (const auto& [scope, mfses] : reference_result().pool_scopes) {
    for (const core::Mfs& mfs : mfses) {
      entries.push_back(PoolEntry{mfs, 1});
    }
  }
  return entries;
}

Message sample_lease() {
  Message m;
  m.type = MsgType::kLeaseCell;
  m.sender = kCoordinatorId;
  m.seq = 3;
  m.lease = 7;
  m.cell = richest_cell().cell;
  m.start_seconds = 123.5;
  m.scope = m.cell.scope(ShareScope::kCell);
  m.preload = sample_entries();
  return m;
}

Message sample_done() {
  Message m;
  m.type = MsgType::kCellDone;
  m.sender = 2;
  m.seq = 9;
  m.lease = 7;
  m.result = richest_cell();
  m.inserts = sample_entries();
  m.pool_delta.entries = 3;
  m.pool_delta.hits = 5;
  m.pool_delta.cross_worker_hits = 1;
  m.pool_delta.warm_hits = 2;
  m.pool_delta.duplicate_inserts = 1;
  return m;
}

TEST(FleetMessages, EveryTypeRoundTripsByteIdentically) {
  std::vector<Message> messages;
  messages.push_back(sample_lease());
  {
    Message shutdown;
    shutdown.type = MsgType::kLeaseCell;
    shutdown.shutdown = true;
    messages.push_back(shutdown);
  }
  messages.push_back(sample_done());
  {
    Message batch;
    batch.type = MsgType::kMfsBatch;
    batch.sender = 1;
    batch.seq = 4;
    batch.lease = 7;
    batch.first_ordinal = 2;
    batch.inserts = sample_entries();
    messages.push_back(batch);
  }
  {
    Message hb;
    hb.type = MsgType::kHeartbeat;
    hb.sender = 0;
    hb.lease = 7;
    hb.busy = true;
    hb.probes = 41;
    messages.push_back(hb);
  }
  {
    Message ack;
    ack.type = MsgType::kAck;
    ack.lease = 7;
    messages.push_back(ack);
  }
  for (const Message& m : messages) {
    const std::string doc = m.to_json();
    const Message back = Message::from_json(doc);
    EXPECT_EQ(back.to_json(), doc) << doc;
  }
}

TEST(FleetMessages, RejectsTruncationAtEveryPrefix) {
  const std::string doc = sample_done().to_json();
  ASSERT_NO_THROW(Message::from_json(doc));
  for (std::size_t n = 0; n < doc.size(); ++n) {
    EXPECT_THROW(Message::from_json(doc.substr(0, n)), JsonError)
        << "prefix of length " << n << " parsed";
  }
}

TEST(FleetMessages, RejectsTargetedGarbles) {
  const std::vector<std::string> bad = {
      "",
      "{}",
      "[]",
      "42",
      R"({"type":"unknown","sender":0,"seq":1,"lease":1})",
      // Negative seq / lease.
      R"({"type":"ack","sender":0,"seq":-1,"lease":1})",
      R"({"type":"ack","sender":0,"seq":1,"lease":-1})",
      // Lease-bound types demand a non-zero lease.
      R"({"type":"ack","sender":0,"seq":1,"lease":0})",
      R"({"type":"cell_done","sender":0,"seq":1,"lease":0})",
      R"({"type":"mfs_batch","sender":0,"seq":1,"lease":0,)"
      R"("first_ordinal":0,"inserts":[]})",
      // Missing per-type fields.
      R"({"type":"mfs_batch","sender":0,"seq":1,"lease":1})",
      R"({"type":"cell_done","sender":0,"seq":1,"lease":1})",
      R"({"type":"heartbeat","sender":0,"seq":1,"lease":0})",
      R"({"type":"lease_cell","sender":-1,"seq":1,"lease":1})",
      // Negative first_ordinal.
      R"({"type":"mfs_batch","sender":0,"seq":1,"lease":1,)"
      R"("first_ordinal":-2,"inserts":[]})",
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW(Message::from_json(doc), JsonError) << "accepted: " << doc;
  }
  // A garbled enum inside an otherwise valid lease: strict error.
  std::string lease = sample_lease().to_json();
  const std::size_t pos = lease.find("\"mode\":\"");
  ASSERT_NE(pos, std::string::npos);
  lease[pos + 8] = '?';
  EXPECT_THROW(Message::from_json(lease), JsonError);
}

TEST(FleetMessages, RandomByteFlipsNeverMisbehave) {
  // Flip random bytes in real payloads; from_json must either throw
  // JsonError or parse — anything else (crash, UB) is what the sanitizer
  // CI jobs exist to catch.
  const std::vector<std::string> docs = {sample_lease().to_json(),
                                         sample_done().to_json()};
  Rng rng(7);
  for (const std::string& doc : docs) {
    for (int trial = 0; trial < 300; ++trial) {
      std::string garbled = doc;
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<i64>(doc.size()) - 1));
      garbled[pos] = static_cast<char>(rng.uniform_int(1, 127));
      try {
        (void)Message::from_json(garbled);
      } catch (const JsonError&) {
        // expected for most mutations
      }
    }
  }
}

TEST(LoopbackTransport, FifoPerPairAndTimeout) {
  LoopbackTransport t(2);
  EXPECT_TRUE(t.send(0, kCoordinatorId, "a"));
  EXPECT_TRUE(t.send(0, kCoordinatorId, "b"));
  int from = 99;
  std::string payload;
  ASSERT_EQ(t.recv(kCoordinatorId, &from, &payload, milliseconds(100)),
            RecvStatus::kMessage);
  EXPECT_EQ(from, 0);
  EXPECT_EQ(payload, "a");
  ASSERT_EQ(t.recv(kCoordinatorId, &from, &payload, milliseconds(100)),
            RecvStatus::kMessage);
  EXPECT_EQ(payload, "b");
  EXPECT_EQ(t.recv(kCoordinatorId, &from, &payload, milliseconds(10)),
            RecvStatus::kTimeout);
  t.close(kCoordinatorId);
  EXPECT_EQ(t.recv(kCoordinatorId, &from, &payload, milliseconds(10)),
            RecvStatus::kClosed);
  EXPECT_FALSE(t.send(0, kCoordinatorId, "c"));
}

TEST(LoopbackTransport, FaultRulesDropDuplicateDelay) {
  LoopbackTransport t(1);
  FaultRule drop;
  drop.action = FaultRule::Action::kDrop;
  drop.type = "heartbeat";
  drop.times = 1;
  t.add_fault(drop);
  FaultRule dup;
  dup.action = FaultRule::Action::kDuplicate;
  dup.type = "ack";
  t.add_fault(dup);

  EXPECT_FALSE(t.send(0, kCoordinatorId, R"({"type":"heartbeat"})"));
  EXPECT_TRUE(t.send(0, kCoordinatorId, R"({"type":"heartbeat"})"));
  EXPECT_TRUE(t.send(kCoordinatorId, 0, R"({"type":"ack"})"));

  int from = 0;
  std::string payload;
  ASSERT_EQ(t.recv(kCoordinatorId, &from, &payload, milliseconds(100)),
            RecvStatus::kMessage);  // the second heartbeat (first dropped)
  EXPECT_EQ(t.recv(kCoordinatorId, &from, &payload, milliseconds(10)),
            RecvStatus::kTimeout);
  // The ack was duplicated: two copies for worker 0.
  ASSERT_EQ(t.recv(0, &from, &payload, milliseconds(100)),
            RecvStatus::kMessage);
  ASSERT_EQ(t.recv(0, &from, &payload, milliseconds(100)),
            RecvStatus::kMessage);
  EXPECT_EQ(t.dropped(), 1);
  EXPECT_EQ(t.duplicated(), 1);

  // A delayed message is passed over in favour of later ready ones.
  LoopbackTransport t2(1);
  FaultRule delay;
  delay.action = FaultRule::Action::kDelay;
  delay.type = "first";
  delay.delay = milliseconds(60);
  t2.add_fault(delay);
  EXPECT_TRUE(t2.send(0, kCoordinatorId, R"({"type":"first"})"));
  EXPECT_TRUE(t2.send(0, kCoordinatorId, R"({"type":"second"})"));
  ASSERT_EQ(t2.recv(kCoordinatorId, &from, &payload, milliseconds(500)),
            RecvStatus::kMessage);
  EXPECT_NE(payload.find("second"), std::string::npos);
  ASSERT_EQ(t2.recv(kCoordinatorId, &from, &payload, milliseconds(500)),
            RecvStatus::kMessage);
  EXPECT_NE(payload.find("first"), std::string::npos);
  EXPECT_EQ(t2.delayed(), 1);
}

// Generous protocol timers for functional fleet tests: TSan slows
// execution 5-20x, and a heartbeat timeout tuned for real time would
// declare healthy workers dead under the sanitizer.
FleetRunOptions patient_options() {
  FleetRunOptions opts;
  opts.coordinator.heartbeat_interval = milliseconds(25);
  opts.coordinator.heartbeat_timeout = milliseconds(2000);
  opts.coordinator.stall_timeout = milliseconds(60000);
  return opts;
}

// ---- Acceptance: fault-free fleet == in-process campaign, byte for byte.

TEST(Fleet, FaultFreeFleetMatchesInProcessCampaignAtAnyWorkerCount) {
  for (const int workers : {1, 2, 4}) {
    CampaignConfig config = small_config();
    config.workers = workers;
    const CampaignResult reference = Campaign(config).run();
    const FleetRunResult fleet =
        run_loopback_fleet(config, patient_options());

    // Report, checkpoint, and schedule documents all byte-identical.
    EXPECT_EQ(orchestrator::build_report(fleet.campaign).to_json(),
              orchestrator::build_report(reference).to_json())
        << workers << " workers";
    EXPECT_EQ(orchestrator::make_checkpoint(fleet.campaign).to_json(),
              orchestrator::make_checkpoint(reference).to_json())
        << workers << " workers";
    EXPECT_EQ(fleet.stats.requeues, 0);
    EXPECT_EQ(fleet.stats.heartbeat_misses, 0);
    EXPECT_EQ(fleet.stats.stolen, 0);
    EXPECT_EQ(fleet.stats.leases,
              static_cast<i64>(reference.cells.size()));
  }
}

// Dropped, duplicated, and delayed messages must not change the report:
// CellDone is retried until Acked and accepted exactly once, MfsBatch
// ordinals dedup and reorder, the CellDone insert list reconciles dropped
// batches.
TEST(Fleet, MessageFaultsDoNotChangeTheReport) {
  CampaignConfig config = small_config();
  const CampaignResult reference = Campaign(config).run();

  FleetRunOptions opts = patient_options();
  {
    FaultRule drop_batch;  // first streamed extraction vanishes
    drop_batch.action = FaultRule::Action::kDrop;
    drop_batch.type = "mfs_batch";
    drop_batch.times = 1;
    opts.faults.push_back(drop_batch);
    FaultRule drop_ack;  // worker must retransmit its CellDone
    drop_ack.action = FaultRule::Action::kDrop;
    drop_ack.type = "ack";
    drop_ack.times = 1;
    opts.faults.push_back(drop_ack);
    FaultRule dup_done;  // every CellDone arrives twice
    dup_done.action = FaultRule::Action::kDuplicate;
    dup_done.type = "cell_done";
    opts.faults.push_back(dup_done);
    FaultRule delay_done;  // and one arrives late, after its duplicate
    delay_done.action = FaultRule::Action::kDelay;
    delay_done.type = "cell_done";
    delay_done.times = 1;
    delay_done.delay = milliseconds(40);
    opts.faults.push_back(delay_done);
  }
  const FleetRunResult fleet = run_loopback_fleet(config, opts);

  EXPECT_EQ(orchestrator::build_report(fleet.campaign).to_json(),
            orchestrator::build_report(reference).to_json());
  EXPECT_GT(fleet.stats.duplicates, 0);  // the duplicate path actually ran
  EXPECT_GT(fleet.dropped, 0);
  EXPECT_GT(fleet.duplicated, 0);
}

// ---- Acceptance: kill a worker mid-cell; zero double-counted probes.

TEST(Fleet, KilledWorkerCellIsRequeuedWithoutDoubleCounting) {
  CampaignConfig config = small_config();
  const CampaignResult reference = Campaign(config).run();

  FleetRunOptions opts = patient_options();
  // Death detection must be meaningfully faster than the stall guard but
  // still TSan-tolerant; the killed worker stops heartbeating entirely, so
  // this is latency tuning, not a correctness knob.
  opts.coordinator.heartbeat_timeout = milliseconds(800);
  opts.kill_worker = 0;
  opts.kill_at_cell = reference.cells.front().cell.label();
  const FleetRunResult fleet = run_loopback_fleet(config, opts);

  EXPECT_GE(fleet.stats.heartbeat_misses, 1);
  EXPECT_GE(fleet.stats.requeues, 1);

  // Every planned cell has exactly one accepted result, none failed, and
  // plan order is preserved.
  ASSERT_EQ(fleet.campaign.cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < fleet.campaign.cells.size(); ++i) {
    const CellResult& cr = fleet.campaign.cells[i];
    EXPECT_EQ(cr.cell.label(), reference.cells[i].cell.label());
    EXPECT_FALSE(cr.failed()) << cr.cell.label() << ": " << cr.error;
    EXPECT_FALSE(cr.skipped);
    EXPECT_GT(cr.result.experiments, 0) << cr.cell.label();
  }

  // Zero double-counting: the report's totals are the sum of exactly one
  // accepted result per cell — re-leasing must not inflate them.  Cells
  // the dead worker never touched are bitwise the reference's.
  i64 total = 0;
  for (const CellResult& cr : fleet.campaign.cells) {
    total += cr.result.experiments;
  }
  EXPECT_EQ(orchestrator::build_report(fleet.campaign).total_experiments,
            static_cast<int>(total));
  for (std::size_t i = 1; i < fleet.campaign.cells.size(); ++i) {
    // Cell 0 re-ran with the dead worker's partial extractions preloaded
    // (so its trajectory may differ); under cell scopes every other cell
    // is untouched by the fault and must match the reference exactly.
    EXPECT_EQ(fleet.campaign.cells[i].result.experiments,
              reference.cells[i].result.experiments)
        << fleet.campaign.cells[i].cell.label();
    EXPECT_EQ(fleet.campaign.cells[i].result.elapsed_seconds,
              reference.cells[i].result.elapsed_seconds)
        << fleet.campaign.cells[i].cell.label();
  }
}

// With every worker dead and nobody reconnecting, the coordinator must
// fail loudly instead of hanging the harness.
TEST(Fleet, StallFailsLoudlyWhenEveryWorkerIsDead) {
  CampaignConfig config = small_config();
  config.subsystems = {'B'};
  config.seeds_per_cell = 1;
  config.workers = 1;

  FleetRunOptions opts;
  opts.coordinator.heartbeat_interval = milliseconds(25);
  opts.coordinator.heartbeat_timeout = milliseconds(300);
  opts.coordinator.stall_timeout = milliseconds(1500);
  opts.kill_worker = 0;
  opts.kill_at_cell = "B/Diag#0";
  EXPECT_THROW(run_loopback_fleet(config, opts), std::runtime_error);
}

// An idle worker steals queued cells from a slow one: the wall-clock
// imbalance the virtual-time schedule cannot see.
TEST(Fleet, IdleWorkerStealsFromSlowWorkerQueue) {
  CampaignConfig config = small_config();  // 4 cells, 2 workers

  FleetRunOptions opts = patient_options();
  opts.coordinator.steal_after = milliseconds(50);
  opts.slow_worker = 0;
  opts.slow_probe_us = 3000;
  const FleetRunResult fleet = run_loopback_fleet(config, opts);

  EXPECT_GE(fleet.stats.stolen, 1);
  for (const CellResult& cr : fleet.campaign.cells) {
    EXPECT_FALSE(cr.failed());
    EXPECT_FALSE(cr.skipped);
    EXPECT_GT(cr.result.experiments, 0);
  }
}

// ---- Acceptance: coordinator journal + resume, zero double-counting.

// The coordinator streams lease events, applied extractions, and reconciled
// CellDones through the campaign journal.  Cutting that journal at a frame
// boundary and resuming restores every journaled cell verbatim, leases only
// the remainder, and reports byte-identically — a journaled completed cell
// is never re-leased and its probes are never re-spent.
TEST(Fleet, CoordinatorJournalResumesByteIdentically) {
  CampaignConfig config = small_config();
  const std::string golden =
      orchestrator::build_report(Campaign(config).run()).to_json();

  const std::string path =
      ::testing::TempDir() + "collie_fleet_test.journal";
  std::remove(path.c_str());
  {
    orchestrator::CampaignJournal journal(path, /*journal_every=*/4);
    CampaignConfig jcfg = config;
    jcfg.journal = &journal;
    const FleetRunResult fleet = run_loopback_fleet(jcfg, patient_options());
    // Journaling the coordinator never perturbs the fleet's report.
    EXPECT_EQ(orchestrator::build_report(fleet.campaign).to_json(), golden);
  }
  const orchestrator::JournalRecovery rec =
      orchestrator::recover_journal(path, /*repair=*/false);
  ASSERT_FALSE(rec.torn);
  const orchestrator::JournalResume complete =
      orchestrator::parse_journal(rec.payloads);
  EXPECT_EQ(complete.completed.size(), 4u);
  // Every lease grant was journaled as an event.
  int lease_events = 0;
  for (const orchestrator::JournalEvent& ev : complete.events) {
    lease_events += ev.what == "lease" ? 1 : 0;
  }
  EXPECT_EQ(lease_events, 4);

  std::size_t first_done = 0;
  for (std::size_t i = 0; i < rec.payloads.size(); ++i) {
    if (rec.payloads[i].find("\"type\":\"cell_done\"") != std::string::npos) {
      first_done = i;
      break;
    }
  }
  ASSERT_GT(first_done, 0u);

  const std::string cut_path = path + ".cut";
  for (const std::size_t k : {first_done + 1, rec.payloads.size()}) {
    std::remove(cut_path.c_str());
    {
      orchestrator::JournalWriter writer(cut_path);
      for (std::size_t i = 0; i < k; ++i) writer.append(rec.payloads[i]);
      writer.sync();
    }
    const orchestrator::JournalResume resume = orchestrator::parse_journal(
        orchestrator::recover_journal(cut_path, /*repair=*/true).payloads);
    ASSERT_TRUE(resume.has_begin);
    const std::size_t restored = resume.completed.size();

    orchestrator::CampaignJournal journal(cut_path, /*journal_every=*/4);
    CampaignConfig rcfg = config;
    rcfg.journal = &journal;
    rcfg.resume = &resume;
    rcfg.replay = resume.schedule;
    const FleetRunResult fleet = run_loopback_fleet(rcfg, patient_options());
    EXPECT_EQ(orchestrator::build_report(fleet.campaign).to_json(), golden)
        << "cut " << k;
    // Restored cells are never re-leased: only the remainder goes out.
    EXPECT_EQ(fleet.stats.leases, static_cast<i64>(4 - restored))
        << "cut " << k;
    EXPECT_EQ(fleet.stats.requeues, 0) << "cut " << k;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// checkpoint_cell folds (plan order) reproduce make_checkpoint exactly —
// the coordinator's incremental mid-run checkpoint is built this way.
TEST(Checkpoint, PerCellFoldMatchesMakeCheckpoint) {
  const CampaignResult& result = reference_result();
  orchestrator::CampaignCheckpoint fold;
  fold.share = orchestrator::to_string(result.share);
  for (const CellResult& cr : result.cells) {
    const std::string scope = cr.cell.scope(result.share);
    orchestrator::checkpoint_cell(
        fold,
        (cr.skipped || !cr.failed()) ? cr.cell.label() : std::string(),
        scope, result.pool_scopes.at(scope));
  }
  EXPECT_EQ(fold.to_json(), orchestrator::make_checkpoint(result).to_json());
}

}  // namespace
}  // namespace collie::fleet
