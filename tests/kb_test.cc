// The knowledge base's contract:
//   * scope parsing canonicalizes pool scopes and cell labels into one
//     (subsystem, fabric, cc) key and rejects unknown scenario names;
//   * corpus compaction dedups by core::same_anomaly_region — first-added
//     region wins, later duplicates only append provenance — and merges
//     checkpoints recorded under conflicting share policies into one shard;
//   * collie-kb-v1 documents round-trip byte-identical, and truncated or
//     garbled ones throw core::JsonError (the persistence fuzz pattern);
//   * KnowledgeBase answers batch queries against a published directory:
//     hits carry the mechanism join, unknown scopes miss instead of throw.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/json_reader.h"
#include "core/space.h"
#include "kb/corpus.h"
#include "kb/query.h"
#include "orchestrator/checkpoint.h"
#include "sim/subsystem.h"

namespace collie::kb {
namespace {

using core::JsonError;

// An MFS pinning num_qps to [lo, hi], witness at the low edge — the same
// region fixture the overlap-criterion tests use.
core::Mfs qps_range_mfs(const core::SearchSpace& space, core::Symptom symptom,
                        double lo, double hi, u64 seed = 5) {
  core::Mfs mfs;
  mfs.symptom = symptom;
  core::FeatureCondition cond;
  cond.feature = core::Feature::kNumQps;
  cond.categorical = false;
  cond.lo = lo;
  cond.hi = hi;
  mfs.conditions.push_back(cond);
  Rng rng(seed);
  mfs.witness = space.random_point(rng);
  mfs.witness.num_qps = static_cast<int>(lo);
  space.fixup(mfs.witness);
  return mfs;
}

// ---- scope parsing ----------------------------------------------------------

TEST(KbScopeTest, ParsesPoolScopesAndCellLabels) {
  const ScopeKey plain = parse_scope("B");
  EXPECT_EQ(plain.subsystem, 'B');
  EXPECT_EQ(plain.fabric, "pair");
  EXPECT_EQ(plain.cc, "off");
  EXPECT_EQ(plain.canonical(), "B");

  const ScopeKey fabric = parse_scope("F@hetero");
  EXPECT_EQ(fabric.subsystem, 'F');
  EXPECT_EQ(fabric.fabric, "hetero");
  EXPECT_EQ(fabric.canonical(), "F@hetero");

  const ScopeKey cc = parse_scope("F@fanin4+dcqcn");
  EXPECT_EQ(cc.fabric, "fanin4");
  EXPECT_EQ(cc.cc, "dcqcn");
  EXPECT_EQ(cc.canonical(), "F@fanin4+dcqcn");

  // A CC scope without a fabric override keeps the default pair fabric.
  const ScopeKey cc_only = parse_scope("B+mistuned");
  EXPECT_EQ(cc_only.fabric, "pair");
  EXPECT_EQ(cc_only.cc, "mistuned");
  EXPECT_EQ(cc_only.canonical(), "B+mistuned");

  // Cell labels drop their suffix: cells of one space are comparable.
  EXPECT_EQ(parse_scope("B/Diag#0").canonical(), "B");
  EXPECT_EQ(parse_scope("F@hetero/Perf#3").canonical(), "F@hetero");
}

TEST(KbScopeTest, RejectsUnknownScenarioNames) {
  EXPECT_THROW(parse_scope(""), JsonError);
  EXPECT_THROW(parse_scope("/Diag#0"), JsonError);
  EXPECT_THROW(parse_scope("Z"), JsonError);               // no such subsystem
  EXPECT_THROW(parse_scope("F@no-such-fabric"), JsonError);
  EXPECT_THROW(parse_scope("F+no-such-cc"), JsonError);
  EXPECT_THROW(parse_scope("Fhetero"), JsonError);         // missing '@'
}

TEST(KbScopeTest, MaterializeArmsTheScenario) {
  EXPECT_FALSE(parse_scope("F@fanin4").materialize().cc_armed());
  EXPECT_TRUE(parse_scope("F@fanin4+dcqcn").materialize().cc_armed());
}

// ---- corpus compaction ------------------------------------------------------

TEST(CorpusBuilderTest, SameRegionDuplicatesMergeWithProvenanceKept) {
  const core::SearchSpace space(sim::subsystem('F'));
  CorpusBuilder builder;
  // b's witness is inside a's region: same anomaly region, a wins.
  builder.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 128),
              Provenance{"ck1.json", "F"});
  builder.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 64),
              Provenance{"ck2.json", "F"});
  // Disjoint region: its own entry.
  builder.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 512, 1024),
              Provenance{"ck2.json", "F"});
  // Same region, different symptom: never the same anomaly.
  builder.add("F", qps_range_mfs(space, core::Symptom::kLowThroughput, 8, 64),
              Provenance{"ck3.json", "F"});

  const Corpus corpus = builder.build(/*evaluate_mechanisms=*/false);
  ASSERT_EQ(corpus.shards.size(), 1u);
  const CorpusShard& shard = corpus.shards.at("F");
  ASSERT_EQ(shard.entries.size(), 3u);
  // First-added region wins; the duplicate only appended its provenance.
  ASSERT_EQ(shard.entries[0].sources.size(), 2u);
  EXPECT_EQ(shard.entries[0].sources[0].source, "ck1.json");
  EXPECT_EQ(shard.entries[0].sources[1].source, "ck2.json");
  EXPECT_EQ(shard.entries[0].mfs.conditions[0].hi, 128.0);
  EXPECT_EQ(shard.entries[1].sources.size(), 1u);
  EXPECT_EQ(shard.entries[2].sources.size(), 1u);
  // Entries are renumbered to shard positions.
  for (std::size_t i = 0; i < shard.entries.size(); ++i) {
    EXPECT_EQ(shard.entries[i].mfs.index, static_cast<int>(i));
  }
}

TEST(CorpusBuilderTest, ConflictingShareScopesMergeIntoOneShard) {
  // One checkpoint recorded under --share subsystem, one under --share cell:
  // the cell label canonicalizes to the same shard, and the same region
  // dedups across the two spellings with both raw scopes preserved.
  const core::SearchSpace space(sim::subsystem('B'));
  orchestrator::CampaignCheckpoint by_subsystem;
  by_subsystem.share = "subsystem";
  by_subsystem.scopes["B"] = {
      qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 128)};
  orchestrator::CampaignCheckpoint by_cell;
  by_cell.share = "cell";
  by_cell.scopes["B/Diag#0"] = {
      qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 64)};
  by_cell.scopes["B/Diag#1"] = {
      qps_range_mfs(space, core::Symptom::kLowThroughput, 512, 1024)};

  CorpusBuilder builder;
  builder.add_checkpoint(by_subsystem, "ck1.json");
  builder.add_checkpoint(by_cell, "ck2.json");
  const Corpus corpus = builder.build(/*evaluate_mechanisms=*/false);
  ASSERT_EQ(corpus.shards.size(), 1u);
  const CorpusShard& shard = corpus.shards.at("B");
  ASSERT_EQ(shard.entries.size(), 2u);
  ASSERT_EQ(shard.entries[0].sources.size(), 2u);
  EXPECT_EQ(shard.entries[0].sources[0].scope, "B");
  EXPECT_EQ(shard.entries[0].sources[1].scope, "B/Diag#0");
  EXPECT_EQ(shard.entries[1].sources[0].scope, "B/Diag#1");
}

TEST(CorpusBuilderTest, EmptyInputBuildsEmptyCorpus) {
  CorpusBuilder builder;
  EXPECT_EQ(builder.build().size(), 0u);
  builder.add_checkpoint(orchestrator::CampaignCheckpoint{}, "empty.json");
  const Corpus corpus = builder.build();
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_TRUE(corpus.shards.empty());
  EXPECT_EQ(Corpus::from_json(corpus.to_json()).size(), 0u);
}

TEST(CorpusBuilderTest, BuildIsDeterministic) {
  // Witnesses must come from each scope's own space: conditions and
  // placements are index-encoded against it.
  const core::SearchSpace space_f(sim::subsystem('F'));
  const core::SearchSpace space_b(sim::subsystem('B'));
  CorpusBuilder builder;
  builder.add("F", qps_range_mfs(space_f, core::Symptom::kPauseFrames, 8, 128),
              Provenance{"ck1.json", "F"});
  builder.add("B", qps_range_mfs(space_b, core::Symptom::kLowThroughput, 4, 32),
              Provenance{"ck1.json", "B"});
  // Labeling probes run on a fixed RNG stream: building twice (mechanism
  // evaluation included) is byte-identical.
  EXPECT_EQ(builder.build().to_json(), builder.build().to_json());
}

TEST(CorpusBuilderTest, MechanismJoinLabelsEveryEntry) {
  const core::SearchSpace space(sim::subsystem('F'));
  CorpusBuilder builder;
  builder.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 128),
              Provenance{"ck1.json", "F"});
  builder.add("F",
              qps_range_mfs(space, core::Symptom::kLowThroughput, 512, 1024),
              Provenance{"ck1.json", "F"});
  const Corpus corpus = builder.build(/*evaluate_mechanisms=*/true);
  for (const CorpusEntry& e : corpus.shards.at("F").entries) {
    // The label is whatever root_cause_text says about the id — "" only for
    // uncatalogued (id 0) regions.
    EXPECT_EQ(e.label, root_cause_text(e.anomaly_id));
    if (e.anomaly_id != 0) {
      EXPECT_FALSE(e.label.empty());
    }
  }
}

TEST(KbRootCauseTest, TextForMechanismIds) {
  EXPECT_EQ(root_cause_text(0), "");
  EXPECT_EQ(root_cause_text(101),
            "Fabric congestion: heterogeneous port-rate mismatch");
  EXPECT_EQ(root_cause_text(102),
            "Fabric congestion: ToR fan-in oversubscription");
  EXPECT_EQ(root_cause_text(987654), "");  // no catalog row: no text
  EXPECT_FALSE(root_cause_text(1).empty());  // Table-2 rows have headings
}

// ---- collie-kb-v1 persistence ----------------------------------------------

// A small two-shard corpus with a merged-provenance entry, built once for
// the round-trip and fuzz tests below.
Corpus fixture_corpus() {
  // Each scope's witnesses come from its own materialized space: conditions
  // and placements are index-encoded against it.
  const core::SearchSpace pair(parse_scope("F").materialize());
  const core::SearchSpace hetero(parse_scope("F@hetero").materialize());
  CorpusBuilder builder;
  builder.add("F", qps_range_mfs(pair, core::Symptom::kPauseFrames, 8, 128),
              Provenance{"ck1.json", "F"});
  builder.add("F/Diag#0",
              qps_range_mfs(pair, core::Symptom::kPauseFrames, 8, 64),
              Provenance{"ck2.json", "F/Diag#0"});
  builder.add("F@hetero",
              qps_range_mfs(hetero, core::Symptom::kLowThroughput, 512, 1024),
              Provenance{"ck2.json", "F@hetero"});
  return builder.build();
}

TEST(CorpusPersistenceTest, RoundTripIsByteIdentical) {
  const Corpus corpus = fixture_corpus();
  const std::string doc = corpus.to_json();
  const Corpus parsed = Corpus::from_json(doc);
  EXPECT_EQ(parsed.to_json(), doc);
  EXPECT_EQ(parsed.size(), corpus.size());
  ASSERT_EQ(parsed.shards.size(), 2u);
  const CorpusEntry& merged = parsed.shards.at("F").entries[0];
  ASSERT_EQ(merged.sources.size(), 2u);
  EXPECT_EQ(merged.sources[1].source, "ck2.json");
  EXPECT_EQ(merged.sources[1].scope, "F/Diag#0");
  // The mechanism join reloads too.
  EXPECT_EQ(merged.anomaly_id, corpus.shards.at("F").entries[0].anomaly_id);
  EXPECT_EQ(merged.dominant, corpus.shards.at("F").entries[0].dominant);
}

TEST(CorpusPersistenceTest, RejectsTruncationAtEveryPrefix) {
  const std::string doc = fixture_corpus().to_json();
  ASSERT_NO_THROW(Corpus::from_json(doc));
  for (std::size_t n = 0; n < doc.size(); ++n) {
    EXPECT_THROW(Corpus::from_json(doc.substr(0, n)), JsonError)
        << "prefix of length " << n << " parsed";
  }
  EXPECT_THROW(Corpus::from_json(doc + "]"), JsonError);
}

TEST(CorpusPersistenceTest, RejectsTargetedGarbles) {
  const std::string doc = fixture_corpus().to_json();
  // Wrong schema tag.
  {
    std::string g = doc;
    g.replace(g.find("collie-kb-v1"), 12, "collie-kb-v9");
    EXPECT_THROW(Corpus::from_json(g), JsonError);
  }
  // Shard keyed off its canonical scope: "F@pair" canonicalizes to "F".
  {
    std::string g = doc;
    g.replace(g.find("\"scope\":\"F\""), 12, "\"scope\":\"F@pair\"");
    EXPECT_THROW(Corpus::from_json(g), JsonError);
  }
  // Unknown scenario in a shard scope.
  {
    std::string g = doc;
    g.replace(g.find("\"scope\":\"F@hetero\""), 19, "\"scope\":\"F@enrico\"");
    EXPECT_THROW(Corpus::from_json(g), JsonError);
  }
  // Duplicate shard scope: make both shards "F@hetero"... then the first
  // shard's entries canonicalize fine but the scope repeats.
  {
    std::string g = doc;
    g.replace(g.find("\"scope\":\"F\""), 12, "\"scope\":\"F@hetero\"");
    EXPECT_THROW(Corpus::from_json(g), JsonError);
  }
  // Unknown bottleneck name in the mechanism join.
  {
    const std::size_t pos = doc.find("\"dominant\":\"");
    ASSERT_NE(pos, std::string::npos);
    std::string g = doc;
    g[pos + 12] = '?';
    EXPECT_THROW(Corpus::from_json(g), JsonError);
  }
  // Provenance-free entry: empty the first sources array.
  {
    const std::size_t pos = doc.find("\"sources\":[");
    ASSERT_NE(pos, std::string::npos);
    const std::size_t end = doc.find(']', pos);
    std::string g = doc.substr(0, pos + 11) + doc.substr(end);
    EXPECT_THROW(Corpus::from_json(g), JsonError);
  }
}

TEST(CorpusPersistenceTest, RandomGarblesNeverMisbehave) {
  const std::string doc = fixture_corpus().to_json();
  Rng rng(51);
  // Flip random bytes; the parser must either throw JsonError or return a
  // corpus — anything else (crash, UB) is caught by the sanitizer jobs.
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbled = doc;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<i64>(doc.size()) - 1));
    garbled[pos] = static_cast<char>(rng.uniform_int(1, 127));
    try {
      (void)Corpus::from_json(garbled);
    } catch (const JsonError&) {
      // expected for most mutations
    }
  }
}

// ---- KnowledgeBase queries --------------------------------------------------

TEST(KnowledgeBaseTest, AnswersHitsWithMechanismJoinAndMissesCleanly) {
  const Corpus corpus = fixture_corpus();
  KnowledgeBase kb;
  EXPECT_EQ(kb.generation(), 0u);
  EXPECT_EQ(kb.size(), 0u);
  kb.merge(corpus);
  EXPECT_EQ(kb.generation(), 1u);
  EXPECT_EQ(kb.size(), corpus.size());
  EXPECT_EQ(kb.scopes(), (std::vector<std::string>{"F", "F@hetero"}));

  const CorpusEntry& known = corpus.shards.at("F").entries[0];
  const QueryResult hit = kb.query("F", known.mfs.witness);
  EXPECT_TRUE(hit.covered);
  EXPECT_EQ(hit.scope, "F");
  EXPECT_EQ(hit.entry, 0);
  EXPECT_EQ(hit.anomaly_id, known.anomaly_id);
  EXPECT_EQ(hit.dominant, known.dominant);
  EXPECT_EQ(hit.label, known.label);
  EXPECT_EQ(hit.mfs.conditions.size(), known.mfs.conditions.size());

  // A cell-label query canonicalizes onto the same shard.
  EXPECT_TRUE(kb.query("F/Perf#7", known.mfs.witness).covered);
  // The same workload misses in a scope whose regions don't cover it.
  const QueryResult other = kb.query("F@hetero", known.mfs.witness);
  EXPECT_EQ(other.scope, "F@hetero");
  // Unknown and unparseable scopes miss — a server answers, it never dies.
  EXPECT_FALSE(kb.query("__unknown__", known.mfs.witness).covered);
  EXPECT_FALSE(kb.query("", known.mfs.witness).covered);
  // A workload outside every region misses.
  Workload far = known.mfs.witness;
  far.num_qps = 100000;
  const core::SearchSpace space(sim::subsystem('F'));
  space.fixup(far);
  if (space.numeric_value(far, core::Feature::kNumQps) > 128.0) {
    EXPECT_FALSE(kb.query("F", far).covered);
  }
}

TEST(KnowledgeBaseTest, BatchQueriesMatchSingleQueries) {
  const Corpus corpus = fixture_corpus();
  KnowledgeBase kb;
  kb.merge(corpus);

  std::vector<Query> batch;
  for (const auto& [scope, shard] : corpus.shards) {
    for (const CorpusEntry& e : shard.entries) {
      batch.push_back(Query{scope, e.mfs.witness});
      batch.push_back(Query{"__unknown__", e.mfs.witness});
    }
  }
  const std::vector<QueryResult> results = kb.query_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryResult single = kb.query(batch[i].scope, batch[i].workload);
    EXPECT_EQ(results[i].covered, single.covered) << i;
    EXPECT_EQ(results[i].entry, single.entry) << i;
    EXPECT_EQ(results[i].anomaly_id, single.anomaly_id) << i;
  }
}

TEST(KnowledgeBaseTest, MergeCompactsAgainstPublishedEntries) {
  const core::SearchSpace space(sim::subsystem('F'));
  CorpusBuilder first;
  first.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 128),
            Provenance{"day1.json", "F"});
  CorpusBuilder second;
  // Same region from a later corpus refresh plus one genuinely new region.
  second.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 64),
             Provenance{"day2.json", "F"});
  second.add("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 512, 1024),
             Provenance{"day2.json", "F"});

  KnowledgeBase kb;
  kb.merge(first.build(/*evaluate_mechanisms=*/false));
  EXPECT_EQ(kb.size(), 1u);
  kb.merge(second.build(/*evaluate_mechanisms=*/false));
  EXPECT_EQ(kb.generation(), 2u);
  // The duplicate folded into the published entry; only the new region
  // appended.
  EXPECT_EQ(kb.size(), 2u);
  const QueryResult hit =
      kb.query("F", qps_range_mfs(space, core::Symptom::kPauseFrames, 8, 128)
                        .witness);
  EXPECT_TRUE(hit.covered);
  EXPECT_EQ(hit.entry, 0);
}

}  // namespace
}  // namespace collie::kb
