// The headline calibration test: every concrete Appendix-A trigger setting
// must reproduce its Table-2 symptom on its primary subsystem, and the
// mechanism labeler must map it back to its own anomaly id.
#include <gtest/gtest.h>

#include "catalog/anomalies.h"
#include "common/rng.h"
#include "sim/perf_model.h"
#include "sim/subsystem.h"

namespace collie {
namespace {

class Table2Test : public ::testing::TestWithParam<int> {};

TEST_P(Table2Test, ConcreteSettingReproducesSymptom) {
  const catalog::AnomalyInfo& a = catalog::anomaly(GetParam());
  const sim::Subsystem& sys = sim::subsystem(a.primary_subsystem);
  std::string why;
  ASSERT_TRUE(a.concrete.valid(&why)) << why;

  Rng rng(2024);
  const sim::SimResult r = sim::evaluate(sys, a.concrete, rng);
  const bool pause = r.pause_duration_ratio > 0.001;
  const bool low_tput =
      r.wire_utilization < 0.8 && r.pps_utilization < 0.8;

  if (a.symptom == catalog::Symptom::kPauseFrames) {
    EXPECT_TRUE(pause) << "anomaly #" << a.id << ": expected pause frames, "
                       << "pause ratio " << r.pause_duration_ratio;
  } else {
    EXPECT_FALSE(pause) << "anomaly #" << a.id
                        << ": unexpected pause frames";
    EXPECT_TRUE(low_tput) << "anomaly #" << a.id << ": wire util "
                          << r.wire_utilization << ", pps util "
                          << r.pps_utilization;
  }
}

TEST_P(Table2Test, RegionContainsItsConcreteSetting) {
  const catalog::AnomalyInfo& a = catalog::anomaly(GetParam());
  ASSERT_TRUE(static_cast<bool>(a.region));
  EXPECT_TRUE(a.region(a.concrete)) << "anomaly #" << a.id;
}

TEST_P(Table2Test, MechanismLabelerIdentifiesIt) {
  const catalog::AnomalyInfo& a = catalog::anomaly(GetParam());
  const sim::Subsystem& sys = sim::subsystem(a.primary_subsystem);
  Rng rng(2024);
  const sim::SimResult r = sim::evaluate(sys, a.concrete, rng);
  const int id = catalog::label_by_mechanism(a.chip, a.concrete, r.dominant,
                                             a.symptom);
  EXPECT_EQ(id, a.id) << "dominant=" << to_string(r.dominant);
}

INSTANTIATE_TEST_SUITE_P(AllAnomalies, Table2Test,
                         ::testing::Range(1, 19),
                         [](const auto& info) {
                           return "Anomaly" + std::to_string(info.param);
                         });

TEST(Table2, CountsMatchPaper) {
  // 18 total: 15 new + 3 previously known; 13 on subsystem F (CX-6),
  // 5 on subsystem H (P2100G); "7 of them are already fixed".
  const auto& all = catalog::all_anomalies();
  ASSERT_EQ(all.size(), 18u);
  int new_count = 0;
  int fixed_count = 0;
  for (const auto& a : all) {
    if (a.is_new) ++new_count;
    if (a.fixed) ++fixed_count;
  }
  EXPECT_EQ(new_count, 15);
  EXPECT_EQ(18 - new_count, 3);
  EXPECT_EQ(fixed_count, 7);
  EXPECT_EQ(catalog::anomalies_for_chip("CX-6").size(), 13u);
  EXPECT_EQ(catalog::anomalies_for_chip("P2100").size(), 5u);
}

TEST(Table2, FixesNeutralizeAnomalies) {
  // Anomaly #3's fix: raise the deployment MTU to 4096.
  {
    Workload w = catalog::anomaly(3).concrete;
    w.mtu = 4096;
    Rng rng(1);
    const auto r = sim::evaluate(sim::subsystem('F'), w, rng);
    EXPECT_LT(r.pause_duration_ratio, 0.001);
    EXPECT_GT(r.wire_utilization, 0.9);
  }
  // Anomaly #9's fix: force the RNIC into PCIe relaxed ordering.
  {
    sim::Subsystem fixed = sim::subsystem('E');
    fixed.link.forced_relaxed_ordering = true;
    Rng rng(1);
    const auto r = sim::evaluate(fixed, catalog::anomaly(9).concrete, rng);
    EXPECT_LT(r.pause_duration_ratio, 0.001);
  }
  // Anomaly #12's fix: correct the PCIe bridge ACSCtl configuration.
  {
    sim::Subsystem fixed = sim::subsystem('E');
    fixed.host.gpu_acs_misrouted = false;
    fixed.link.forced_relaxed_ordering = true;  // E also got the RO fix
    Rng rng(1);
    const auto r = sim::evaluate(fixed, catalog::anomaly(12).concrete, rng);
    EXPECT_LT(r.pause_duration_ratio, 0.001);
  }
}

TEST(Table2, Anomaly2SymptomDiffersFromAnomaly1) {
  // #1 and #2 share the root cause but differ in symptom: the burst mode
  // pauses, the steady mode only drops throughput (Appendix A).
  Rng rng(5);
  const auto r1 =
      sim::evaluate(sim::subsystem('F'), catalog::anomaly(1).concrete, rng);
  const auto r2 =
      sim::evaluate(sim::subsystem('F'), catalog::anomaly(2).concrete, rng);
  EXPECT_GT(r1.pause_duration_ratio, 0.001);
  EXPECT_LT(r2.pause_duration_ratio, 0.001);
  EXPECT_LT(r2.wire_utilization, 0.8);
}

TEST(Table2, SwitchingQpTypeBreaksAnomaly1) {
  // Appendix A: "#1 and #2 won't trigger anomalies if we only switch the
  // type of QP from UD to RC".
  Workload w = catalog::anomaly(1).concrete;
  w.qp_type = QpType::kRC;
  Rng rng(5);
  const auto r = sim::evaluate(sim::subsystem('F'), w, rng);
  EXPECT_LT(r.pause_duration_ratio, 0.001);
  EXPECT_GT(r.wire_utilization, 0.8);
}

}  // namespace
}  // namespace collie
