// Evaluation hot path: zero steady-state allocations and scratch-reuse
// correctness.
//
// The compiled evaluate() overload promises that once an EvalScratch is
// warm, probing allocates nothing — the property the campaign's probe
// throughput rests on.  This binary counts every global operator new to pin
// it, across the workload shapes that exercise every conditional resource
// (anomalous, loopback/incast, scenario fabrics, armed congestion control),
// and pins that one scratch reused across scenarios and workloads answers
// bit-for-bit like a fresh evaluation each time.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "catalog/anomalies.h"
#include "core/mfs_store.h"
#include "core/search.h"
#include "core/space.h"
#include "nic/dcqcn.h"
#include "obs/telemetry.h"
#include "sim/perf_model.h"
#include "sim/subsystem.h"
#include "workload/engine.h"

// ---- Global allocation counter --------------------------------------------

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) -
                                         1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace collie::sim {
namespace {

template <typename Fn>
long count_allocations(Fn&& fn) {
  const long before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

Workload clean_write() {
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 8;
  w.wqe_batch = 8;
  w.mr_size = 1 * MiB;
  w.pattern = {64 * KiB};
  w.mtu = 4096;
  return w;
}

// Workload shapes covering every conditional resource in build_model:
// healthy, ICM-miss-bound, READ small-MTU, loopback incast, bidirectional
// ordering hazard, and a CC-armed DCQCN sender.
std::vector<Workload> hot_workloads() {
  std::vector<Workload> ws;
  ws.push_back(clean_write());
  ws.push_back(catalog::anomaly(1).concrete);
  ws.push_back(catalog::anomaly(9).concrete);
  ws.push_back(catalog::anomaly(13).concrete);
  Workload cc = clean_write();
  cc.dcqcn = true;
  cc.dcqcn_rate_ai_mbps = 40.0;
  ws.push_back(cc);
  return ws;
}

TEST(HotPathAllocation, SteadyStateEvaluateAllocatesNothing) {
  const std::vector<Workload> ws = hot_workloads();
  for (const char sys_id : {'F', 'H'}) {
    for (const char* fabric : {"pair", "fanin4"}) {
      const Subsystem sys = with_cc(
          with_fabric(subsystem(sys_id), net::fabric_scenario(fabric)),
          nic::cc_scenario("dcqcn"));
      const CompiledScenario compiled(sys);
      EvalScratch scratch;
      Rng rng(7);
      // Warm: first probes size every reusable buffer (flow/resource
      // tables, epoch vectors, the note string) to this scenario's shape.
      for (const Workload& w : ws) {
        (void)evaluate(compiled, w, rng, scratch);
        (void)evaluate(compiled, w, rng, scratch);
      }
      for (const Workload& w : ws) {
        const long allocs = count_allocations([&] {
          for (int i = 0; i < 20; ++i) {
            (void)evaluate(compiled, w, rng, scratch);
          }
        });
        EXPECT_EQ(allocs, 0)
            << sys_id << "@" << fabric << " " << w.describe();
      }
    }
  }
}

TEST(HotPathAllocation, IndexedCoversAllocatesNothingOnceWarm) {
  const Subsystem& sys = subsystem('F');
  core::SearchSpace space(sys);
  core::LocalMfsStore store;
  Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    const Workload wit = space.random_point(rng);
    core::Mfs m;
    m.symptom = core::Symptom::kPauseFrames;
    m.witness = wit;
    for (core::Feature f :
         {core::Feature::kNumQps, core::Feature::kWqeBatch,
          core::Feature::kMsgSize}) {
      core::FeatureCondition c;
      c.feature = f;
      c.categorical = false;
      const double v = std::max(1.0, space.numeric_value(wit, f));
      c.lo = v / 4.0;
      c.hi = v * 4.0;
      m.conditions.push_back(std::move(c));
    }
    core::FeatureCondition qp;
    qp.feature = core::Feature::kQpType;
    qp.categorical = true;
    qp.allowed = {space.categorical_value(wit, core::Feature::kQpType)};
    m.conditions.push_back(std::move(qp));
    store.insert(space, std::move(m));
  }
  std::vector<Workload> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(space.random_point(rng));
  // Warm the thread-local query mask.
  for (const Workload& w : queries) (void)store.covers(space, w);
  const long allocs = count_allocations([&] {
    for (int rep = 0; rep < 10; ++rep) {
      for (const Workload& w : queries) {
        (void)store.covers(space, w);
      }
    }
  });
  EXPECT_EQ(allocs, 0);
}

TEST(HotPathAllocation, DriverProbeWithTelemetryOnAllocatesNothing) {
  // The full driver probe (engine run into the driver's reused Measurement,
  // monitor judgement) with a live obs::Telemetry attached: counters, stage
  // histograms and span-ring records must all stay on preallocated storage.
  // This also pins the scratch-owned Measurement — the in-place run()
  // overload may not reallocate samples or the note string once warm.
  // The functional pass builds a real verbs network (allocating by design),
  // so it is off here, as in the campaign probe loop; keep_epochs likewise.
  obs::Telemetry telemetry;
  workload::EngineOptions eopts;
  eopts.run_functional_pass = false;
  eopts.keep_epochs = false;
  eopts.telemetry = obs::ProbeTelemetry(&telemetry, 0);
  const Subsystem sys = with_cc(
      with_fabric(subsystem('F'), net::fabric_scenario("fanin4")),
      nic::cc_scenario("dcqcn"));
  const workload::Engine engine(sys, eopts);
  core::SearchSpace space(sys);
  core::SearchDriver driver(engine, space);
  driver.set_telemetry(obs::ProbeTelemetry(&telemetry, 0));

  const std::vector<Workload> ws = hot_workloads();
  Rng rng(7);
  for (const Workload& w : ws) {
    (void)driver.measure_and_judge(w, rng);
    (void)driver.measure_and_judge(w, rng);
  }
  for (const Workload& w : ws) {
    const long allocs = count_allocations([&] {
      for (int i = 0; i < 20; ++i) {
        double cost = 0.0;
        (void)driver.measure_and_judge(w, rng, &cost);
      }
    });
    EXPECT_EQ(allocs, 0) << w.describe();
  }
  // The instrumentation actually fired (this is not a vacuous pin).
  const obs::Snapshot snap = telemetry.snapshot();
  EXPECT_GE(snap.counters.at("probe.experiments"),
            static_cast<i64>(ws.size()) * 22);
  EXPECT_GT(snap.histograms.at("engine.eval_ns").count, 0u);
  EXPECT_GT(telemetry.ring(0).recorded(), 0u);
}

TEST(HotPathScratch, ReuseAcrossScenariosMatchesFreshEvaluationBitForBit) {
  // One scratch dragged across scenarios and workload shapes must never
  // leak state: every call equals an uncompiled fresh-scratch evaluation,
  // field for field, and leaves the caller's RNG at the same position.
  const std::vector<Workload> ws = hot_workloads();
  EvalScratch reused;
  for (const char* fabric : {"fanin4", "pair", "hetero"}) {
    for (const char sys_id : {'B', 'F', 'H'}) {
      const Subsystem sys = with_cc(
          with_fabric(subsystem(sys_id), net::fabric_scenario(fabric)),
          nic::cc_scenario("dcqcn"));
      const CompiledScenario compiled(sys);
      for (const Workload& w : ws) {
        Rng fresh_rng(11);
        Rng hot_rng(11);
        const SimResult fresh = evaluate(sys, w, fresh_rng);
        const SimResult& hot = evaluate(compiled, w, hot_rng, reused);
        EXPECT_EQ(fresh.tx_goodput_bps, hot.tx_goodput_bps);
        EXPECT_EQ(fresh.rx_goodput_bps, hot.rx_goodput_bps);
        EXPECT_EQ(fresh.tx_wire_bps, hot.tx_wire_bps);
        EXPECT_EQ(fresh.rx_wire_bps, hot.rx_wire_bps);
        EXPECT_EQ(fresh.tx_pps, hot.tx_pps);
        EXPECT_EQ(fresh.rx_pps, hot.rx_pps);
        EXPECT_EQ(fresh.pause_duration_ratio, hot.pause_duration_ratio);
        EXPECT_EQ(fresh.fabric_pause_ratio, hot.fabric_pause_ratio);
        EXPECT_EQ(fresh.cc_suppressed_ratio, hot.cc_suppressed_ratio);
        EXPECT_EQ(fresh.cc_mark_probability, hot.cc_mark_probability);
        EXPECT_EQ(fresh.wire_utilization, hot.wire_utilization);
        EXPECT_EQ(fresh.pps_utilization, hot.pps_utilization);
        EXPECT_EQ(fresh.dominant, hot.dominant);
        EXPECT_EQ(fresh.bottleneck_note, hot.bottleneck_note);
        ASSERT_EQ(fresh.port_pause_ratio.size(), hot.port_pause_ratio.size());
        for (std::size_t p = 0; p < fresh.port_pause_ratio.size(); ++p) {
          EXPECT_EQ(fresh.port_pause_ratio[p], hot.port_pause_ratio[p]);
        }
        ASSERT_EQ(fresh.epochs.size(), hot.epochs.size());
        for (std::size_t e = 0; e < fresh.epochs.size(); ++e) {
          EXPECT_EQ(fresh.epochs[e].t, hot.epochs[e].t);
          EXPECT_EQ(fresh.epochs[e].pause_fraction,
                    hot.epochs[e].pause_fraction);
          EXPECT_EQ(fresh.epochs[e].counters.perf, hot.epochs[e].counters.perf);
          EXPECT_EQ(fresh.epochs[e].counters.diag, hot.epochs[e].counters.diag);
        }
        EXPECT_EQ(fresh.counters.perf, hot.counters.perf);
        EXPECT_EQ(fresh.counters.diag, hot.counters.diag);
        EXPECT_EQ(fresh_rng.next_u64(), hot_rng.next_u64());
      }
    }
  }
}

TEST(HotPathScratch, ResultReferenceIsInvalidatedNotCorrupted) {
  // The returned reference aliases the scratch: the next call overwrites
  // it.  Copying before the next call must preserve the first result.
  const Subsystem& sys = subsystem('F');
  const CompiledScenario compiled(sys);
  EvalScratch scratch;
  Rng rng(5);
  const SimResult first = evaluate(compiled, clean_write(), rng, scratch);
  Workload other = catalog::anomaly(1).concrete;
  const SimResult& second = evaluate(compiled, other, rng, scratch);
  EXPECT_NE(first.rx_goodput_bps, second.rx_goodput_bps);
}

}  // namespace
}  // namespace collie::sim
