#include <gtest/gtest.h>

#include "core/search.h"
#include "sim/subsystem.h"

namespace collie::core {
namespace {

workload::EngineOptions fast_engine_opts() {
  workload::EngineOptions opts;
  opts.run_functional_pass = false;  // keep search tests quick
  return opts;
}

class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : engine_(sim::subsystem('F'), fast_engine_opts()),
        space_(sim::subsystem('F')),
        driver_(engine_, space_) {}

  workload::Engine engine_;
  SearchSpace space_;
  SearchDriver driver_;
};

TEST_F(SearchTest, RandomSearchRespectsBudget) {
  SearchBudget budget;
  budget.seconds = 30 * 60.0;  // 30 simulated minutes
  Rng rng(1);
  const SearchResult r = driver_.run_random(budget, rng);
  EXPECT_GT(r.experiments, 10);
  EXPECT_GE(r.elapsed_seconds, budget.seconds);
  // Each experiment costs at least 20 s; an in-flight MFS extraction may
  // overshoot the budget by its probe count but no more.
  EXPECT_LE(r.experiments,
            static_cast<int>(budget.seconds / 20.0) + 120);
  EXPECT_EQ(r.trace.size(), static_cast<std::size_t>(r.experiments));
}

TEST_F(SearchTest, ExperimentCapRespected) {
  SearchBudget budget;
  budget.max_experiments = 25;
  Rng rng(2);
  const SearchResult r = driver_.run_random(budget, rng);
  // MFS extraction completes atomically once an anomaly is found, so the
  // cap may be exceeded by one extraction's probes at most.
  EXPECT_LE(r.experiments, 25 + 120);
}

TEST_F(SearchTest, DeterministicGivenSeed) {
  SearchBudget budget;
  budget.seconds = 20 * 60.0;
  Rng rng1(7);
  Rng rng2(7);
  const SearchResult a = driver_.run_random(budget, rng1);
  const SearchResult b = driver_.run_random(budget, rng2);
  EXPECT_EQ(a.experiments, b.experiments);
  EXPECT_EQ(a.found.size(), b.found.size());
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

TEST_F(SearchTest, SaFindsAnomaliesWithinHours) {
  SaConfig cfg;
  cfg.mode = GuidanceMode::kDiag;
  SearchBudget budget;
  budget.seconds = 3 * 3600.0;
  Rng rng(3);
  const SearchResult r = driver_.run_simulated_annealing(cfg, budget, rng);
  EXPECT_GE(r.found.size(), 2u);
  // Discovery times are recorded and monotone.
  double prev = 0.0;
  for (const auto& f : r.found) {
    EXPECT_GE(f.found_at_seconds, prev);
    prev = f.found_at_seconds;
    EXPECT_TRUE(f.verdict.anomalous());
  }
}

TEST_F(SearchTest, MfsSkipsAvoidRedundantExperiments) {
  SaConfig cfg;
  cfg.mode = GuidanceMode::kDiag;
  SearchBudget budget;
  budget.seconds = 4 * 3600.0;
  Rng rng(5);
  const SearchResult with_mfs =
      driver_.run_simulated_annealing(cfg, budget, rng);
  // With several anomalies found, later mutations into their regions must
  // be pruned by MatchMFS at least occasionally.
  if (with_mfs.found.size() >= 3) {
    EXPECT_GT(with_mfs.mfs_skips, 0);
  }
  // Every found anomaly carries a non-trivial MFS.
  for (const auto& f : with_mfs.found) {
    EXPECT_FALSE(f.mfs.conditions.empty());
  }
}

TEST_F(SearchTest, NoMfsVariantRecordsBareWitnesses) {
  SaConfig cfg;
  cfg.mode = GuidanceMode::kDiag;
  cfg.use_mfs = false;
  SearchBudget budget;
  budget.seconds = 1 * 3600.0;
  Rng rng(5);
  const SearchResult r = driver_.run_simulated_annealing(cfg, budget, rng);
  EXPECT_EQ(r.mfs_skips, 0);
  for (const auto& f : r.found) {
    EXPECT_TRUE(f.mfs.conditions.empty());
  }
}

TEST_F(SearchTest, TraceMarksMfsExtraction) {
  SaConfig cfg;
  cfg.mode = GuidanceMode::kDiag;
  SearchBudget budget;
  budget.seconds = 2 * 3600.0;
  Rng rng(9);
  const SearchResult r = driver_.run_simulated_annealing(cfg, budget, rng);
  if (!r.found.empty()) {
    bool saw_flat = false;
    for (const auto& tp : r.trace) {
      if (tp.in_mfs_extraction) saw_flat = true;
    }
    EXPECT_TRUE(saw_flat);
  }
}

TEST_F(SearchTest, PerfModeRunsAndGuides) {
  SaConfig cfg;
  cfg.mode = GuidanceMode::kPerf;
  SearchBudget budget;
  budget.seconds = 1 * 3600.0;
  Rng rng(11);
  const SearchResult r = driver_.run_simulated_annealing(cfg, budget, rng);
  EXPECT_GT(r.experiments, 20);
}

// Seed-trajectory pin for the evaluation hot path: the same search driven
// through the compiled-scenario engine and the uncompiled per-call engine
// must be indistinguishable — experiment for experiment, trace value for
// trace value, witness for witness.  This is the search-level half of the
// bit-exactness contract (the golden rows are the single-probe half).
TEST_F(SearchTest, CompiledEngineReproducesUncompiledTrajectoriesExactly) {
  workload::EngineOptions uncompiled_opts = fast_engine_opts();
  uncompiled_opts.use_compiled = false;
  const workload::Engine uncompiled(sim::subsystem('F'), uncompiled_opts);
  SearchDriver uncompiled_driver(uncompiled, space_);

  SaConfig cfg;
  cfg.mode = GuidanceMode::kDiag;
  SearchBudget budget;
  budget.seconds = 2 * 3600.0;
  Rng rng_hot(13);
  Rng rng_ref(13);
  const SearchResult hot =
      driver_.run_simulated_annealing(cfg, budget, rng_hot);
  const SearchResult ref =
      uncompiled_driver.run_simulated_annealing(cfg, budget, rng_ref);
  ASSERT_EQ(hot.experiments, ref.experiments);
  EXPECT_EQ(hot.mfs_skips, ref.mfs_skips);
  EXPECT_DOUBLE_EQ(hot.elapsed_seconds, ref.elapsed_seconds);
  ASSERT_EQ(hot.found.size(), ref.found.size());
  for (std::size_t i = 0; i < hot.found.size(); ++i) {
    EXPECT_TRUE(hot.found[i].mfs.witness == ref.found[i].mfs.witness) << i;
    EXPECT_EQ(hot.found[i].mfs.conditions.size(),
              ref.found[i].mfs.conditions.size());
    EXPECT_EQ(hot.found[i].found_at_seconds, ref.found[i].found_at_seconds);
    EXPECT_EQ(hot.found[i].dominant, ref.found[i].dominant);
  }
  ASSERT_EQ(hot.trace.size(), ref.trace.size());
  for (std::size_t i = 0; i < hot.trace.size(); ++i) {
    EXPECT_EQ(hot.trace[i].counter_value, ref.trace[i].counter_value) << i;
    EXPECT_EQ(hot.trace[i].rx_wqe_cache_miss, ref.trace[i].rx_wqe_cache_miss);
    EXPECT_EQ(hot.trace[i].anomaly_found, ref.trace[i].anomaly_found);
  }

  // The random baseline walks a different driver loop; pin it too.
  SearchBudget rnd_budget;
  rnd_budget.seconds = 30 * 60.0;
  Rng r1(17);
  Rng r2(17);
  const SearchResult rnd_hot = driver_.run_random(rnd_budget, r1);
  const SearchResult rnd_ref = uncompiled_driver.run_random(rnd_budget, r2);
  EXPECT_EQ(rnd_hot.experiments, rnd_ref.experiments);
  EXPECT_DOUBLE_EQ(rnd_hot.elapsed_seconds, rnd_ref.elapsed_seconds);
  EXPECT_EQ(rnd_hot.found.size(), rnd_ref.found.size());
}

TEST_F(SearchTest, MeasureAndJudgeChargesCost) {
  Rng rng(1);
  double cost = 0.0;
  Workload w = space_.random_point(rng);
  const Verdict v = driver_.measure_and_judge(w, rng, &cost);
  (void)v;
  EXPECT_GE(cost, 20.0);
}

}  // namespace
}  // namespace collie::core
