// Property tests for the PFC hysteresis integrator: the analytic duty cycle
// the performance model uses must agree with the explicit integrator across
// the overload range, and basic conservation properties must hold.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nic/pfc.h"

namespace collie::nic {
namespace {

struct DutyCase {
  double arrival_gbps;
  double drain_gbps;
};

class PfcDutyTest : public ::testing::TestWithParam<DutyCase> {};

TEST_P(PfcDutyTest, IntegratorMatchesAnalyticDuty) {
  const DutyCase c = GetParam();
  PfcParams params;
  params.buffer_bytes = 2 * MiB;
  PfcBuffer buf(params);
  // Integrate at a resolution fine enough for the XOFF/XON cycle.
  for (int i = 0; i < 6000; ++i) {
    buf.step(10e-6, gbps(c.arrival_gbps), gbps(c.drain_gbps));
  }
  const double analytic =
      c.arrival_gbps <= c.drain_gbps
          ? 0.0
          : 1.0 - c.drain_gbps / c.arrival_gbps;
  EXPECT_NEAR(buf.pause_duration_ratio(), analytic, 0.08)
      << c.arrival_gbps << " -> " << c.drain_gbps;
}

INSTANTIATE_TEST_SUITE_P(
    OverloadRange, PfcDutyTest,
    ::testing::Values(DutyCase{100, 120}, DutyCase{100, 100},
                      DutyCase{100, 90}, DutyCase{100, 60},
                      DutyCase{100, 30}, DutyCase{200, 50},
                      DutyCase{25, 20}, DutyCase{200, 190}));

TEST(PfcProperty, OccupancyNeverExceedsBuffer) {
  PfcParams params;
  params.buffer_bytes = 256 * KiB;
  PfcBuffer buf(params);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    buf.step(50e-6, gbps(rng.uniform(0, 400)), gbps(rng.uniform(0, 200)));
    EXPECT_GE(buf.occupancy_bytes(), 0.0);
    EXPECT_LE(buf.occupancy_bytes(), params.buffer_bytes);
  }
}

TEST(PfcProperty, PauseTimeNeverExceedsWallTime) {
  PfcParams params;
  PfcBuffer buf(params);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double pf =
        buf.step(1e-3, gbps(rng.uniform(0, 300)), gbps(rng.uniform(1, 100)));
    EXPECT_GE(pf, 0.0);
    EXPECT_LE(pf, 1.0 + 1e-9);  // 64 summed sub-steps of rounding
  }
  EXPECT_LE(buf.total_pause_s(), buf.total_time_s() * (1.0 + 1e-9));
  EXPECT_GE(buf.pause_duration_ratio(), 0.0);
  EXPECT_LE(buf.pause_duration_ratio(), 1.0);
}

TEST(PfcProperty, HigherDrainNeverPausesMore) {
  // Monotonicity: with identical arrivals, a faster drain pauses no more.
  for (double arrival : {50.0, 100.0, 200.0}) {
    double prev = 1.1;
    for (double drain : {20.0, 60.0, 100.0, 150.0}) {
      PfcBuffer buf(PfcParams{});
      for (int i = 0; i < 4000; ++i) {
        buf.step(10e-6, gbps(arrival), gbps(drain));
      }
      EXPECT_LE(buf.pause_duration_ratio(), prev + 1e-6)
          << arrival << "/" << drain;
      prev = buf.pause_duration_ratio();
    }
  }
}

}  // namespace
}  // namespace collie::nic
