// Tests for the obs layer: registry shard semantics, the snapshot monoid
// (merge associativity/commutativity, JSON round trip), log2 histogram
// bucketing, the span ring and the telemetry facade's stats rendering.
#include <gtest/gtest.h>

#include <bit>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/json_reader.h"
#include "core/report.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"

namespace collie::obs {
namespace {

// ---- Registry -------------------------------------------------------------

TEST(Registry, CountersSumAcrossShards) {
  RegistryOptions opts;
  opts.shards = 4;
  Registry reg(opts);
  const CounterId c = reg.counter("events");
  reg.add(0, c, 3);
  reg.add(1, c, 5);
  reg.add(3, c, 7);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 15);
}

TEST(Registry, RegistrationIsIdempotent) {
  Registry reg;
  const CounterId a = reg.counter("x");
  const CounterId b = reg.counter("x");
  EXPECT_EQ(a.v, b.v);
  const HistogramId h1 = reg.histogram("h");
  const HistogramId h2 = reg.histogram("h");
  EXPECT_EQ(h1.v, h2.v);
}

TEST(Registry, ShardIndexIsClampedModulo) {
  RegistryOptions opts;
  opts.shards = 2;
  Registry reg(opts);
  const CounterId c = reg.counter("c");
  // Workers 0..7 all land on a valid shard; totals are preserved.
  for (int w = 0; w < 8; ++w) reg.add(w, c, 1);
  reg.add(-3, c, 1);  // negative worker index must not be UB either
  EXPECT_EQ(reg.snapshot().counters.at("c"), 9);
}

TEST(Registry, InvalidIdsAreNoOps) {
  Registry reg;
  reg.add(0, CounterId{}, 5);
  reg.gauge_set(0, GaugeId{}, 5);
  reg.observe(0, HistogramId{}, 5);
  const Snapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(Registry, CapacityOverflowThrowsAtSetupTime) {
  RegistryOptions opts;
  opts.max_counters = 2;
  Registry reg(opts);
  reg.counter("a");
  reg.counter("b");
  EXPECT_THROW(reg.counter("c"), std::length_error);
  // Re-registering an existing name still works at capacity.
  EXPECT_EQ(reg.counter("a").v, 0);
}

TEST(Registry, GaugeSetAndAdd) {
  RegistryOptions opts;
  opts.shards = 2;
  Registry reg(opts);
  const GaugeId g = reg.gauge("depth");
  reg.gauge_set(0, g, 10);
  reg.gauge_add(0, g, -3);
  // Gauges sum across shards (single-writer-per-shard discipline).
  reg.gauge_set(1, g, 2);
  EXPECT_EQ(reg.snapshot().gauges.at("depth"), 9);
}

// ---- Histograms -----------------------------------------------------------

TEST(Histogram, BucketPropertyHolds) {
  // Every value lands in the bucket whose range contains it:
  // bucket 0 = {0}, bucket b = [2^(b-1), 2^b).
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const u64 v = rng.next_u64() >> (rng.next_u64() % 64);
    const int b = histogram_bucket(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, kHistogramBuckets);
    EXPECT_EQ(b, std::bit_width(v));
    EXPECT_LE(v, histogram_bucket_upper(b));
    if (b > 0) EXPECT_GT(v, histogram_bucket_upper(b - 1));
  }
  EXPECT_EQ(histogram_bucket(0), 0);
  EXPECT_EQ(histogram_bucket(1), 1);
  EXPECT_EQ(histogram_bucket(2), 2);
  EXPECT_EQ(histogram_bucket(3), 2);
  EXPECT_EQ(histogram_bucket(4), 3);
}

TEST(Histogram, SumOfBucketsEqualsCount) {
  Registry reg;
  const HistogramId h = reg.histogram("lat");
  Rng rng(7);
  u64 expected_sum = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const u64 v = rng.next_u64() >> 40;
    expected_sum += v;
    reg.observe(0, h, v);
  }
  const HistogramData& data = reg.snapshot().histograms.at("lat");
  EXPECT_EQ(data.count, static_cast<u64>(n));
  EXPECT_EQ(data.sum, expected_sum);
  u64 bucket_total = 0;
  for (u64 b : data.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, static_cast<u64>(n));
}

TEST(Histogram, QuantileSanity) {
  HistogramData h;
  // 90 fast observations (value 1) and 10 slow (value 1000).
  for (int i = 0; i < 90; ++i) {
    h.buckets[histogram_bucket(1)] += 1;
    h.sum += 1;
  }
  for (int i = 0; i < 10; ++i) {
    h.buckets[histogram_bucket(1000)] += 1;
    h.sum += 1000;
  }
  h.count = 100;
  EXPECT_EQ(h.quantile(0.5), histogram_bucket_upper(histogram_bucket(1)));
  EXPECT_EQ(h.quantile(0.99),
            histogram_bucket_upper(histogram_bucket(1000)));
  EXPECT_DOUBLE_EQ(h.mean(), (90.0 * 1 + 10.0 * 1000) / 100.0);
  EXPECT_EQ(HistogramData{}.quantile(0.5), 0u);
}

// ---- Snapshot monoid ------------------------------------------------------

Snapshot random_snapshot(Rng& rng) {
  Snapshot s;
  s.t_seconds = rng.uniform() * 100.0;
  const char* counter_names[] = {"a", "b", "c", "d"};
  const char* gauge_names[] = {"g1", "g2"};
  const char* hist_names[] = {"h1", "h2"};
  for (const char* n : counter_names) {
    if (rng.bernoulli(0.7)) s.counters[n] = rng.uniform_int(-10, 1000);
  }
  for (const char* n : gauge_names) {
    if (rng.bernoulli(0.7)) s.gauges[n] = rng.uniform_int(-5, 50);
  }
  for (const char* n : hist_names) {
    if (!rng.bernoulli(0.7)) continue;
    HistogramData h;
    const int obs_count = static_cast<int>(rng.uniform_int(0, 20));
    for (int i = 0; i < obs_count; ++i) {
      const u64 v = static_cast<u64>(rng.uniform_int(0, 1 << 20));
      h.buckets[histogram_bucket(v)] += 1;
      h.sum += v;
      h.count += 1;
    }
    s.histograms[n] = h;
  }
  return s;
}

Snapshot merged(const Snapshot& a, const Snapshot& b) {
  Snapshot out = a;
  out.merge(b);
  return out;
}

TEST(Snapshot, MergeIsCommutativeAndAssociative) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const Snapshot a = random_snapshot(rng);
    const Snapshot b = random_snapshot(rng);
    const Snapshot c = random_snapshot(rng);
    EXPECT_EQ(merged(a, b), merged(b, a));
    EXPECT_EQ(merged(merged(a, b), c), merged(a, merged(b, c)));
  }
}

TEST(Snapshot, DefaultIsMergeIdentity) {
  Rng rng(5);
  const Snapshot a = random_snapshot(rng);
  EXPECT_EQ(merged(a, Snapshot{}), a);
  EXPECT_EQ(merged(Snapshot{}, a), a);
}

TEST(Snapshot, MergeSumsPointwiseAndKeepsMaxTime) {
  Snapshot a;
  a.t_seconds = 3.0;
  a.counters["x"] = 10;
  a.counters["only_a"] = 1;
  Snapshot b;
  b.t_seconds = 7.0;
  b.counters["x"] = 5;
  b.counters["only_b"] = 2;
  const Snapshot m = merged(a, b);
  EXPECT_DOUBLE_EQ(m.t_seconds, 7.0);
  EXPECT_EQ(m.counters.at("x"), 15);
  EXPECT_EQ(m.counters.at("only_a"), 1);
  EXPECT_EQ(m.counters.at("only_b"), 2);
}

TEST(Snapshot, JsonRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Snapshot s = random_snapshot(rng);
    const Snapshot back = snapshot_from_json(snapshot_to_json(s));
    EXPECT_EQ(back, s);
  }
  // Registry-produced snapshots round-trip too (sparse buckets and all).
  Registry reg;
  const CounterId c = reg.counter("n");
  const HistogramId h = reg.histogram("lat");
  reg.add(0, c, 42);
  reg.observe(0, h, 1000);
  reg.observe(0, h, 0);
  const Snapshot s = reg.snapshot();
  EXPECT_EQ(snapshot_from_json(snapshot_to_json(s)), s);
}

TEST(Snapshot, FromJsonRejectsGarbage) {
  EXPECT_THROW(snapshot_from_json("{"), core::JsonError);
  EXPECT_THROW(snapshot_from_json("[]"), core::JsonError);
  // Histogram cell with a bucket out of range.
  EXPECT_THROW(
      snapshot_from_json(
          R"({"t_seconds":0,"counters":{},"gauges":{},)"
          R"("histograms":{"h":{"count":1,"sum":1,"buckets":[[999,1]]}}})"),
      core::JsonError);
}

// ---- Span ring ------------------------------------------------------------

TEST(SpanRing, NewestFirstAndWraps) {
  SpanRing ring(4);  // power of two already
  EXPECT_EQ(ring.capacity(), 4);
  for (int i = 0; i < 10; ++i) {
    ring.record(ProbeStage::kEvaluate, static_cast<u64>(100 + i), 5);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  const std::vector<SpanRecord> recs = ring.recent(8);
  ASSERT_EQ(recs.size(), 4u);  // capacity-bounded
  EXPECT_EQ(recs[0].start_ticks, 109u);  // newest first
  EXPECT_EQ(recs[1].start_ticks, 108u);
  EXPECT_EQ(recs[3].start_ticks, 106u);
  for (const SpanRecord& r : recs) {
    EXPECT_EQ(r.stage, ProbeStage::kEvaluate);
    EXPECT_EQ(r.duration_ticks, 5u);
  }
}

TEST(SpanRing, CapacityRoundsUpToPowerOfTwo) {
  SpanRing ring(5);
  EXPECT_EQ(ring.capacity(), 8);
  EXPECT_TRUE(ring.recent(3).empty());
}

TEST(SpanRing, StageNamesCoverAllStages) {
  for (int i = 0; i < static_cast<int>(ProbeStage::kCount); ++i) {
    const std::string name = to_string(static_cast<ProbeStage>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?");
  }
}

// ---- Telemetry facade -----------------------------------------------------

TEST(Telemetry, DisabledHandleIsInert) {
  ProbeTelemetry off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.begin(), 0u);
  // None of these may crash or dereference anything.
  off.end_stage(ProbeStage::kEvaluate, 0);
  off.add(CounterId{0}, 1);
  off.observe(HistogramId{0}, 1);
  off.gauge_set(GaugeId{0}, 1);
}

TEST(Telemetry, EnabledHandleRecordsSpansAndCounters) {
  TelemetryOptions opts;
  opts.workers = 2;
  Telemetry tel(opts);
  ProbeTelemetry pt(&tel, 1);
  ASSERT_TRUE(pt.enabled());
  const u64 t0 = pt.begin();
  EXPECT_GT(t0, 0u);
  pt.end_stage(ProbeStage::kMonitor, t0);
  pt.add(tel.probe_ids().experiments, 2);

  const Snapshot snap = tel.snapshot();
  EXPECT_EQ(snap.counters.at("probe.experiments"), 2);
  EXPECT_EQ(snap.histograms.at("probe.stage.monitor_ns").count, 1u);
  EXPECT_EQ(tel.ring(1).recorded(), 1u);
  EXPECT_EQ(tel.ring(0).recorded(), 0u);
  // Worker clamp: ring(3) on a 2-worker telemetry is ring(1).
  EXPECT_EQ(&tel.ring(3), &tel.ring(1));
}

TEST(Telemetry, RenderStatsShowsCountersAndQuantiles) {
  Telemetry tel;
  ProbeTelemetry pt(&tel, 0);
  pt.add(tel.probe_ids().experiments, 19);
  pt.add(tel.probe_ids().anomalies, 3);
  pt.observe(tel.engine_ids().eval_ns, 4096);
  const std::string stats = render_stats(tel.snapshot());
  EXPECT_NE(stats.find("probe.experiments"), std::string::npos);
  EXPECT_NE(stats.find("19"), std::string::npos);
  EXPECT_NE(stats.find("engine.eval_ns"), std::string::npos);
  EXPECT_NE(stats.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace collie::obs
