#include <gtest/gtest.h>

#include "sim/workload.h"

namespace collie {
namespace {

Workload base() {
  Workload w;
  w.pattern = {4 * KiB};
  w.mr_size = 64 * KiB;
  return w;
}

TEST(Workload, TransportOpcodeMatrix) {
  EXPECT_TRUE(transport_supports(QpType::kRC, Opcode::kSend));
  EXPECT_TRUE(transport_supports(QpType::kRC, Opcode::kWrite));
  EXPECT_TRUE(transport_supports(QpType::kRC, Opcode::kRead));
  EXPECT_TRUE(transport_supports(QpType::kUC, Opcode::kSend));
  EXPECT_TRUE(transport_supports(QpType::kUC, Opcode::kWrite));
  EXPECT_FALSE(transport_supports(QpType::kUC, Opcode::kRead));
  EXPECT_TRUE(transport_supports(QpType::kUD, Opcode::kSend));
  EXPECT_FALSE(transport_supports(QpType::kUD, Opcode::kWrite));
  EXPECT_FALSE(transport_supports(QpType::kUD, Opcode::kRead));
}

TEST(Workload, WqeGrouping) {
  Workload w = base();
  w.pattern = {128, 64 * KiB, 1024};
  w.sge_per_wqe = 3;
  w.mr_size = 1 * MiB;
  EXPECT_EQ(w.wqes_per_round(), 1);
  EXPECT_EQ(w.message_bytes(0), 128u + 64 * KiB + 1024u);

  w.sge_per_wqe = 1;
  EXPECT_EQ(w.wqes_per_round(), 3);
  EXPECT_EQ(w.message_bytes(0), 128u);
  EXPECT_EQ(w.message_bytes(1), 64 * KiB);

  w.sge_per_wqe = 2;  // ragged tail WQE
  EXPECT_EQ(w.wqes_per_round(), 2);
  EXPECT_EQ(w.message_bytes(1), 1024u);
}

TEST(Workload, ValidityChecks) {
  std::string why;
  Workload w = base();
  EXPECT_TRUE(w.valid(&why)) << why;

  w.qp_type = QpType::kUD;
  w.opcode = Opcode::kWrite;
  EXPECT_FALSE(w.valid(&why));

  w = base();
  w.pattern.clear();
  EXPECT_FALSE(w.valid());

  w = base();
  w.pattern = {0};
  EXPECT_FALSE(w.valid());

  w = base();
  w.pattern = {128 * KiB};  // SGE larger than MR
  EXPECT_FALSE(w.valid());

  w = base();
  w.wqe_batch = 256;
  w.send_wq_depth = 128;
  EXPECT_FALSE(w.valid(&why));

  w = base();
  w.mtu = 128;
  EXPECT_FALSE(w.valid());
  w.mtu = 8192;
  EXPECT_FALSE(w.valid());

  w = base();
  w.qp_type = QpType::kUD;
  w.opcode = Opcode::kSend;
  w.mtu = 2048;
  w.pattern = {4096};  // UD datagram > MTU
  EXPECT_FALSE(w.valid(&why));
  w.pattern = {2048};
  EXPECT_TRUE(w.valid(&why)) << why;

  w = base();
  w.loopback = true;
  w.opcode = Opcode::kRead;
  EXPECT_FALSE(w.valid());
}

TEST(PatternStats, MixedPattern) {
  Workload w = base();
  w.mr_size = 1 * MiB;
  w.mtu = 1024;
  w.pattern = {64 * KiB, 128, 128, 128};
  w.sge_per_wqe = 1;
  const PatternStats p = analyze_pattern(w);
  EXPECT_DOUBLE_EQ(p.wqes_per_round, 4.0);
  EXPECT_DOUBLE_EQ(p.frac_small_msgs, 0.75);
  EXPECT_DOUBLE_EQ(p.frac_large_msgs, 0.25);
  EXPECT_DOUBLE_EQ(p.pkts_per_round, 64.0 + 3.0);
  EXPECT_NEAR(p.avg_msg_bytes, (64.0 * KiB + 3 * 128) / 4.0, 1e-6);
}

TEST(PatternStats, SgeLevelFractions) {
  Workload w = base();
  w.mr_size = 1 * MiB;
  w.pattern = {128, 64 * KiB, 1024};
  w.sge_per_wqe = 3;
  const PatternStats p = analyze_pattern(w);
  // Message-level: one 65.1KB message, neither small nor (just) large...
  EXPECT_DOUBLE_EQ(p.frac_small_msgs, 0.0);
  EXPECT_DOUBLE_EQ(p.frac_large_msgs, 1.0);
  // SGE-level: 2 of 3 are small, 1 of 3 is large.
  EXPECT_NEAR(p.frac_small_sges, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(p.frac_large_sges, 1.0 / 3.0, 1e-9);
}

TEST(Workload, DescribeMentionsKeyFields) {
  Workload w = base();
  w.bidirectional = true;
  w.num_qps = 320;
  const std::string d = w.describe();
  EXPECT_NE(d.find("Bi-"), std::string::npos);
  EXPECT_NE(d.find("qps=320"), std::string::npos);
  EXPECT_NE(d.find("RC"), std::string::npos);
}

}  // namespace
}  // namespace collie
