#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "sim/perf_model.h"
#include "sim/subsystem.h"

namespace collie::sim {
namespace {

Workload clean_write(int qps = 8, u64 msg = 64 * KiB) {
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = qps;
  w.wqe_batch = 8;
  w.mr_size = 1 * MiB;
  w.pattern = {msg};
  w.mtu = 4096;
  return w;
}

SimResult eval(char sys, const Workload& w, u64 seed = 7) {
  Rng rng(seed);
  return evaluate(subsystem(sys), w, rng);
}

TEST(PerfModel, HealthyWorkloadHitsLineRate) {
  for (char id : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
    const SimResult r = eval(id, clean_write());
    EXPECT_GT(r.wire_utilization, 0.95) << "subsystem " << id;
    EXPECT_LT(r.pause_duration_ratio, 0.001) << "subsystem " << id;
    EXPECT_EQ(r.dominant, Bottleneck::kNone) << "subsystem " << id;
  }
}

TEST(PerfModel, TinyMessagesArePpsBoundNotAnomalous) {
  // 64B messages cannot reach the bps bound, but the wire-rate utilization
  // accounts for per-packet overhead, so a healthy NIC still shows as
  // spec-bound (the paper's definition counts either bound).
  Workload w = clean_write(64, 64);
  w.mtu = 1024;
  const SimResult r = eval('F', w);
  EXPECT_TRUE(r.wire_utilization > 0.8 || r.pps_utilization > 0.8);
  EXPECT_LT(r.pause_duration_ratio, 0.001);
}

TEST(PerfModel, DeterministicGivenSeed) {
  const SimResult a = eval('F', clean_write(), 99);
  const SimResult b = eval('F', clean_write(), 99);
  EXPECT_DOUBLE_EQ(a.rx_goodput_bps, b.rx_goodput_bps);
  EXPECT_DOUBLE_EQ(a.pause_duration_ratio, b.pause_duration_ratio);
}

TEST(PerfModel, EpochsCarryWarmupRamp) {
  Rng rng(3);
  SimConfig cfg;
  const SimResult r = evaluate(subsystem('F'), clean_write(), rng, cfg);
  ASSERT_EQ(static_cast<int>(r.epochs.size()), cfg.epochs);
  const double early = r.epochs[0].counters.get(PerfCounter::kTxGoodputBps);
  const double late = r.epochs.back().counters.get(PerfCounter::kTxGoodputBps);
  EXPECT_LT(early, 0.7 * late);
}

TEST(PerfModel, QpcScalabilityCliff) {
  // Root cause #2: sending rate collapses past the QPC cache capacity for
  // small unbatched messages (anomaly #7 family), monotonically in #QPs.
  Workload w = clean_write(8, 512);
  w.mr_size = 64 * KiB;  // keep the MTT working set out of the picture
  w.wqe_batch = 1;
  w.send_wq_depth = 16;
  w.recv_wq_depth = 16;
  w.mtu = 1024;
  double prev_util = 1.0;
  for (int qps : {8, 128, 480, 2000}) {
    w.num_qps = qps;
    const SimResult r = eval('F', w);
    EXPECT_LE(r.wire_utilization, prev_util + 0.05) << qps << " qps";
    prev_util = r.wire_utilization;
    if (qps >= 480) {
      EXPECT_LT(r.wire_utilization, 0.8) << qps << " qps";
      EXPECT_LT(r.pps_utilization, 0.8) << qps << " qps";
      EXPECT_EQ(r.dominant, Bottleneck::kQpcCacheMiss);
      EXPECT_LT(r.pause_duration_ratio, 0.001);  // sender-side: no pauses
    }
  }
}

TEST(PerfModel, LargeMessagesHideIcmMisses) {
  // Appendix A: "our real applications do not meet them even when the
  // number of QPs exceeds 10K" because large requests hide the miss.
  Workload w = clean_write(10000, 64 * KiB);
  const SimResult r = eval('F', w);
  EXPECT_GT(r.wire_utilization, 0.9);
  EXPECT_EQ(r.dominant, Bottleneck::kNone);
}

TEST(PerfModel, MrScalabilityCliff) {
  Workload w = clean_write(24, 512);
  w.wqe_batch = 1;
  w.mtu = 1024;
  w.mr_size = 64 * KiB;
  w.mrs_per_qp = 4;
  const SimResult ok = eval('F', w);
  EXPECT_GT(ok.wire_utilization, 0.9);
  w.mrs_per_qp = 1024;  // ~24K MRs
  const SimResult bad = eval('F', w);
  EXPECT_LT(bad.wire_utilization, 0.8);
  EXPECT_EQ(bad.dominant, Bottleneck::kMttCacheMiss);
}

TEST(PerfModel, ReadSmallMtuPacketBottleneck) {
  // Anomaly #3: RC READ of large messages collapses at MTU 1024 on the
  // 200G CX-6 and is clean at MTU >= 2048.
  Workload w = clean_write(8, 4 * MiB);
  w.opcode = Opcode::kRead;
  w.mr_size = 4 * MiB;
  w.mtu = 2048;
  EXPECT_GT(eval('F', w).wire_utilization, 0.9);
  w.mtu = 1024;
  const SimResult bad = eval('F', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.001);
  EXPECT_EQ(bad.dominant, Bottleneck::kReadPacketProcessing);
  // The 100G part has headroom: same workload stays clean (the paper's
  // "not a problem with 100 Gbps RNICs from the same vendor").
  EXPECT_LT(eval('D', w).pause_duration_ratio, 0.001);
}

TEST(PerfModel, OrderingStallNeedsAllConditions) {
  // Anomaly #9: bidirectional + small/large mix inside an SG list on the
  // strict-ordering platform.
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 8;
  w.wqe_batch = 8;
  w.mr_size = 4 * MiB;
  w.mtu = 4096;
  w.sge_per_wqe = 3;
  w.pattern = {128, 64 * KiB, 1024};
  w.bidirectional = true;
  const SimResult bad = eval('E', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.01);
  EXPECT_EQ(bad.dominant, Bottleneck::kPcieOrdering);

  Workload uni = w;
  uni.bidirectional = false;
  EXPECT_LT(eval('E', uni).pause_duration_ratio, 0.001);

  Workload uniform = w;
  uniform.pattern = {8 * KiB, 8 * KiB, 8 * KiB};
  EXPECT_LT(eval('E', uniform).pause_duration_ratio, 0.001);

  // Healthy platform (relaxed ordering effective): no stall.
  EXPECT_LT(eval('B', w).pause_duration_ratio, 0.001);
}

TEST(PerfModel, CrossSocketBidirectionalCollapse) {
  // Anomaly #11 on subsystem G: even one connection pauses when
  // bidirectional traffic crosses the weak socket interconnect.
  Workload w = clean_write(1, 256 * KiB);
  w.mr_size = 4 * MiB;
  w.wqe_batch = 16;
  w.bidirectional = true;
  w.remote_mem = {topo::MemKind::kDram, 2};  // socket 1 under NPS 2
  const SimResult bad = eval('G', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.001);
  EXPECT_EQ(bad.dominant, Bottleneck::kHostTopologyPath);
  // Unidirectional cross-socket is fine.
  Workload uni = w;
  uni.bidirectional = false;
  EXPECT_LT(eval('G', uni).pause_duration_ratio, 0.001);
  // Local memory bidirectional is fine.
  Workload local = w;
  local.remote_mem = {topo::MemKind::kDram, 0};
  EXPECT_LT(eval('G', local).pause_duration_ratio, 0.001);
}

TEST(PerfModel, LoopbackIncast) {
  // Anomaly #13: loopback + receive traffic pauses on the CX-6...
  Workload w = clean_write(16, 256 * KiB);
  w.mr_size = 4 * MiB;
  w.wqe_batch = 16;
  w.loopback = true;
  const SimResult bad = eval('F', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.001);
  // ...but not on the P2100G, which rate-limits loopback traffic.
  Workload h = w;
  const SimResult ok = eval('H', h);
  EXPECT_LT(ok.pause_duration_ratio, 0.001);
}

TEST(PerfModel, UdBatchBurstPause) {
  // Anomaly #1 trigger boundaries: batch >= 64 AND recv WQ >= 256.
  Workload w;
  w.qp_type = QpType::kUD;
  w.opcode = Opcode::kSend;
  w.num_qps = 1;
  w.mtu = 2048;
  w.pattern = {2048};
  w.send_wq_depth = 256;
  w.recv_wq_depth = 256;
  w.wqe_batch = 64;
  EXPECT_GT(eval('F', w).pause_duration_ratio, 0.001);
  Workload small_batch = w;
  small_batch.wqe_batch = 16;
  EXPECT_LT(eval('F', small_batch).pause_duration_ratio, 0.001);
  Workload shallow = w;
  shallow.send_wq_depth = 128;
  shallow.recv_wq_depth = 128;
  EXPECT_LT(eval('F', shallow).pause_duration_ratio, 0.001);
}

TEST(PerfModel, ExperimentCostBounds) {
  // "Each experiment we do requires 20-60 seconds, mostly depending on the
  // number of QPs to create and the number of MRs to register" (§5).
  Workload small = clean_write(1);
  EXPECT_GE(experiment_cost_seconds(small), 20.0);
  EXPECT_LE(experiment_cost_seconds(small), 25.0);
  Workload big = clean_write(20000);
  big.mrs_per_qp = 10;
  EXPECT_GT(experiment_cost_seconds(big),
            experiment_cost_seconds(small));
  big.bidirectional = true;
  big.mrs_per_qp = 1000;
  EXPECT_LE(experiment_cost_seconds(big), 60.0);
}

// Property sweep: no workload may produce pause frames from a purely
// sender-side bottleneck, and utilizations stay in [0, ~1].
class PerfModelPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(PerfModelPropertyTest, InvariantsHoldOnRandomWorkloads) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    Workload w = clean_write();
    // Scramble within valid ranges.
    w.qp_type = static_cast<QpType>(rng.uniform_int(0, 2));
    w.opcode = Opcode::kSend;
    if (transport_supports(w.qp_type, Opcode::kWrite) && rng.bernoulli(0.5)) {
      w.opcode = Opcode::kWrite;
    }
    w.num_qps = static_cast<int>(rng.log_uniform_int(1, 20000));
    w.wqe_batch = 1 << rng.uniform_int(0, 7);
    w.send_wq_depth = std::max(w.wqe_batch, 16 << rng.uniform_int(0, 6));
    w.recv_wq_depth = 16 << rng.uniform_int(0, 6);
    w.sge_per_wqe = static_cast<int>(rng.uniform_int(1, 4));
    w.mtu = 256u << rng.uniform_int(0, 4);
    w.mrs_per_qp = static_cast<int>(rng.log_uniform_int(1, 64));
    w.pattern.assign(static_cast<std::size_t>(rng.uniform_int(1, 8)),
                     1ull << rng.uniform_int(6, 16));
    if (w.qp_type == QpType::kUD) {
      // A UD datagram (sum of its SGEs) must fit one MTU.
      const u64 per_sge = std::max<u64>(
          1, w.mtu / static_cast<u32>(w.sge_per_wqe));
      for (u64& s : w.pattern) s = std::min<u64>(s, per_sge);
    }
    w.bidirectional = rng.bernoulli(0.5);
    ASSERT_TRUE(w.valid());

    const char sys = "FH"[rng.uniform_int(0, 1)];
    const SimResult r = eval(sys, w, rng.next_u64());
    EXPECT_GE(r.wire_utilization, 0.0);
    EXPECT_LE(r.wire_utilization, 1.1);
    EXPECT_GE(r.pps_utilization, 0.0);
    EXPECT_GE(r.pause_duration_ratio, 0.0);
    EXPECT_LE(r.pause_duration_ratio, 1.0);
    EXPECT_GE(r.rx_goodput_bps, 0.0);
    // Sender-side bottlenecks never pause.
    if (r.dominant == Bottleneck::kQpcCacheMiss ||
        r.dominant == Bottleneck::kMttCacheMiss ||
        r.dominant == Bottleneck::kMtuSchedulerQuirk ||
        r.dominant == Bottleneck::kRwqeSteadyMiss) {
      EXPECT_LT(r.pause_duration_ratio, 0.01)
          << to_string(r.dominant) << " " << w.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerfModelPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- Fabric scenarios -----------------------------------------------------

// The acceptance bar for the N-port generalization: applying the "pair"
// scenario must reproduce the catalog subsystem bit-for-bit, pause ratios
// included.
TEST(PerfModelFabric, PairScenarioReproducesBaselineExactly) {
  for (char id : {'A', 'F', 'H'}) {
    const Subsystem& base = subsystem(id);
    const Subsystem paired = with_fabric(base, net::fabric_scenario("pair"));
    for (const u64 seed : {u64{7}, u64{19}}) {
      for (const Workload& w :
           {clean_write(), clean_write(2048, 512), clean_write(64, 4 * KiB)}) {
        Rng rng_a(seed);
        Rng rng_b(seed);
        const SimResult a = evaluate(base, w, rng_a);
        const SimResult b = evaluate(paired, w, rng_b);
        EXPECT_DOUBLE_EQ(a.pause_duration_ratio, b.pause_duration_ratio);
        EXPECT_DOUBLE_EQ(a.rx_goodput_bps, b.rx_goodput_bps);
        EXPECT_DOUBLE_EQ(a.wire_utilization, b.wire_utilization);
        EXPECT_DOUBLE_EQ(a.pps_utilization, b.pps_utilization);
        EXPECT_EQ(a.dominant, b.dominant);
        EXPECT_DOUBLE_EQ(a.fabric_pause_ratio, 0.0);
        EXPECT_DOUBLE_EQ(b.fabric_pause_ratio, 0.0);
      }
    }
  }
}

TEST(PerfModelFabric, HeteroPairCongestsTheSlowPort) {
  const Subsystem hetero =
      with_fabric(subsystem('F'), net::fabric_scenario("hetero"));
  // Host B runs a GPU-less platform in the catalog hetero scenario.
  EXPECT_TRUE(hetero.host_b.gpus.empty());
  EXPECT_FALSE(hetero.host.gpus.empty());
  // A wire-saturating sender offers 200G into the 100G port: the switch
  // backpressures it with PFC, and the model attributes that pause to the
  // fabric, not to the subsystem.
  Rng rng(7);
  const SimResult r = evaluate(hetero, clean_write(), rng);
  EXPECT_GT(r.fabric_pause_ratio, 0.2);
  EXPECT_GT(r.pause_duration_ratio, 0.2);
  // Delivered traffic saturates the achievable (port-capped) wire bound, so
  // the workload is healthy by the utilization condition.
  EXPECT_GT(r.wire_utilization, 0.9);
}

TEST(PerfModelFabric, TorFanInScalesExpectedPause) {
  const Subsystem fanin =
      with_fabric(subsystem('F'), net::fabric_scenario("fanin4"));
  Rng rng(7);
  const SimResult r = evaluate(fanin, clean_write(), rng);
  // Four senders share one 4:1-oversubscribed receiver: each gets a quarter
  // share, so three quarters of the offered load is paused away.
  EXPECT_GT(r.fabric_pause_ratio, 0.6);
  EXPECT_GT(r.pause_duration_ratio, 0.6);
  // Per-port accounting covers every fabric port (A, B, 3 co-senders).
  ASSERT_EQ(r.port_pause_ratio.size(), 5u);

  // The reverse direction shares host B's egress the same way: a READ
  // workload (data flows B -> A) saturating its quarter share is healthy,
  // not a low-throughput anomaly.
  Workload read = clean_write();
  read.opcode = Opcode::kRead;
  Rng rng_read(7);
  const SimResult rr = evaluate(fanin, read, rng_read);
  EXPECT_GT(rr.wire_utilization, 0.9);
  EXPECT_LT(rr.pause_duration_ratio, 0.001);

  // Against a milder 2:1 fan-in the expected pause shrinks.
  net::FabricScenario mild = net::fabric_scenario("fanin4");
  mild.fan_in = 2;
  mild.oversubscription = 2.0;
  Rng rng2(7);
  const SimResult r2 =
      evaluate(with_fabric(subsystem('F'), mild), clean_write(), rng2);
  EXPECT_LT(r2.fabric_pause_ratio, r.fabric_pause_ratio);
}

// ---- Pinned pre-CC golden outputs -----------------------------------------

// The CC layer's compatibility contract: with congestion control disabled
// (the default), every scenario's perf-model outputs are bit-for-bit
// identical to the pre-CC model.  The table below was captured from the
// model BEFORE the DCQCN/ECN layer landed (hexfloat, exact); the compares
// are exact double equality, not ULP-tolerant.
struct GoldenRow {
  char sys;
  const char* fabric;
  int workload;  // 0 = clean_write(), 1 = clean_write(2048, 512), 2 = deep UD
  double rx_goodput_bps;
  double tx_wire_bps;
  double pause_duration_ratio;
  double fabric_pause_ratio;
  double wire_utilization;
  double pps_utilization;
  const char* dominant;
};

Workload golden_workload(int index) {
  switch (index) {
    case 0:
      return clean_write();
    case 1:
      return clean_write(2048, 512);
    default: {
      Workload w = clean_write(2048, 512);
      w.qp_type = QpType::kUD;
      w.opcode = Opcode::kSend;
      w.recv_wq_depth = 1024;
      w.mtu = 1024;
      return w;
    }
  }
}

const GoldenRow kGoldenRows[] = {
    {'B', "pair", 0, 0x1.6d37b114771d8p+36, 0x1.74876e7ffffffp+36, 0x0p+0, 0x0p+0, 0x1.fffffffffffffp-1, 0x1.105370cf9f0d4p-5, "none"},
    {'B', "pair", 1, 0x1.89641a9641a97p+35, 0x1.c86522d8522d9p+35, 0x0p+0, 0x0p+0, 0x1.39a1de5aa0f82p-1, 0x1.255567aaabd01p-3, "mtt_cache_miss"},
    {'B', "pair", 2, 0x1.2728944f68d4fp+35, 0x1.c86522d8522d9p+35, 0x0p+0, 0x0p+0, 0x1.d6a1d7d5bb17ep-2, 0x1.b82c1a691544fp-4, "mtt_cache_miss"},
    {'B', "hetero", 0, 0x1.6d37b114771d8p+35, 0x1.74876e7ffffffp+35, 0x1.0025e6316c861p-1, 0x1.ffffffffffffep-2, 0x1.fffffffffffffp-1, 0x1.105370cf9f0d4p-6, "fabric_congestion"},
    {'B', "hetero", 1, 0x1.411a3b0b34944p+35, 0x1.74876e8p+35, 0x1.794d59fb3db99p-3, 0x1.7855df3eec2dp-3, 0x1p+0, 0x1.dedcd9fa71f82p-4, "fabric_congestion"},
    {'B', "hetero", 2, 0x1.e1d781b2203f9p+34, 0x1.74876e8p+35, 0x1.794d59fb3db99p-3, 0x1.7855df3eec2dp-3, 0x1.802665709372ep-1, 0x1.67498cbfde48p-4, "fabric_congestion"},
    {'B', "fanin4", 0, 0x1.6d37b114771d8p+34, 0x1.74876e7ffffffp+34, 0x1.8012f318b643p-1, 0x1.8p-1, 0x1.fffffffffffffp-1, 0x1.105370cf9f0d4p-5, "fabric_congestion"},
    {'B', "fanin4", 1, 0x1.411a3b0b34944p+34, 0x1.74876e8p+34, 0x1.2f29ab3f67b73p-1, 0x1.2f0abbe7dd85ap-1, 0x1p+0, 0x1.dedcd9fa71f82p-3, "fabric_congestion"},
    {'B', "fanin4", 2, 0x1.e1d781b2203f9p+33, 0x1.74876e8p+34, 0x1.2f29ab3f67b73p-1, 0x1.2f0abbe7dd85ap-1, 0x1.802665709372ep-1, 0x1.67498cbfde48p-3, "fabric_congestion"},
    {'F', "pair", 0, 0x1.6d37b114771d8p+37, 0x1.74876e7ffffffp+37, 0x0p+0, 0x0p+0, 0x1.fffffffffffffp-1, 0x1.c7fcd4b4f2816p-6, "none"},
    {'F', "pair", 1, 0x1.5d1cfe1af473ep+35, 0x1.9506a2cd459a7p+35, 0x0p+0, 0x0p+0, 0x1.1654e9e609dd3p-2, 0x1.b3e17d0cc39dap-5, "mtt_cache_miss"},
    {'F', "pair", 2, 0x1.17f1f2553ad1fp+34, 0x1.9506a2cd459a7p+35, 0x0p+0, 0x0p+0, 0x1.be5fd3533d284p-4, 0x1.5d8596190c11p-6, "mtt_cache_miss"},
    {'F', "hetero", 0, 0x1.6d37b114771d8p+36, 0x1.74876e7ffffffp+36, 0x1.0025e6316c861p-1, 0x1.ffffffffffffep-2, 0x1.fffffffffffffp-1, 0x1.c7fcd4b4f2816p-7, "fabric_congestion"},
    {'F', "hetero", 1, 0x1.5d1cfe1af473ep+35, 0x1.9506a2cd459a7p+35, 0x0p+0, 0x0p+0, 0x1.1654e9e609dd3p-1, 0x1.b3e17d0cc39dap-5, "mtt_cache_miss"},
    {'F', "hetero", 2, 0x1.17f1f2553ad1fp+34, 0x1.9506a2cd459a7p+35, 0x0p+0, 0x0p+0, 0x1.be5fd3533d284p-3, 0x1.5d8596190c11p-6, "mtt_cache_miss"},
    {'F', "fanin4", 0, 0x1.6d37b114771d8p+35, 0x1.74876e7ffffffp+35, 0x1.8012f318b643p-1, 0x1.8p-1, 0x1.fffffffffffffp-1, 0x1.c7fcd4b4f2816p-6, "fabric_congestion"},
    {'F', "fanin4", 1, 0x1.411a3b0b34944p+35, 0x1.74876e8p+35, 0x1.4ad14a29b94e8p-4, 0x1.48a38e38e38dp-4, 0x1p+0, 0x1.90e886dd94ff6p-3, "fabric_congestion"},
    {'F', "fanin4", 2, 0x1.017be4c42c34fp+34, 0x1.74876e8p+35, 0x1.4ad14a29b94e8p-4, 0x1.48a38e38e38dp-4, 0x1.9a8f53f714534p-2, 0x1.417a6eb04527ep-4, "fabric_congestion"},
    {'H', "pair", 0, 0x1.6d37b114771d8p+36, 0x1.74876e7ffffffp+36, 0x0p+0, 0x0p+0, 0x1.fffffffffffffp-1, 0x1.bd9fcfdf615b9p-6, "none"},
    {'H', "pair", 1, 0x1.52d8600b1a708p+34, 0x1.891d076ce1ac8p+34, 0x0p+0, 0x0p+0, 0x1.0e253d5f45cf3p-2, 0x1.9d721e2493e68p-5, "mtt_cache_miss"},
    {'H', "pair", 2, 0x1.9101cfe424edcp+32, 0x1.d13b1a2faed7dp+32, 0x1.689b115f3ad7ap-1, 0x0p+0, 0x1.3fb447a6f0172p-4, 0x1.e94b134fe3435p-7, "rwqe_burst_miss"},
    {'H', "hetero", 0, 0x1.6d37b114771d8p+35, 0x1.74876e7ffffffp+35, 0x1.0025e6316c861p-1, 0x1.ffffffffffffep-2, 0x1.fffffffffffffp-1, 0x1.bd9fcfdf615b9p-7, "fabric_congestion"},
    {'H', "hetero", 1, 0x1.52d8600b1a708p+34, 0x1.891d076ce1ac8p+34, 0x0p+0, 0x0p+0, 0x1.0e253d5f45cf3p-1, 0x1.9d721e2493e68p-5, "mtt_cache_miss"},
    {'H', "hetero", 2, 0x1.9101cfe424edcp+32, 0x1.d13b1a2faed7dp+32, 0x1.689b115f3ad7ap-1, 0x0p+0, 0x1.3fb447a6f0172p-3, 0x1.e94b134fe3435p-7, "rwqe_burst_miss"},
    {'H', "fanin4", 0, 0x1.6d37b114771d8p+34, 0x1.74876e7ffffffp+34, 0x1.8012f318b643p-1, 0x1.8p-1, 0x1.fffffffffffffp-1, 0x1.bd9fcfdf615b9p-6, "fabric_congestion"},
    {'H', "fanin4", 1, 0x1.411a3b0b34944p+34, 0x1.74876e8p+34, 0x1.b17133f8e2b1ap-5, 0x1.acf3eec2cd23p-5, 0x1p+0, 0x1.87cbf82a00282p-3, "fabric_congestion"},
    {'H', "fanin4", 2, 0x1.9101cfe424edcp+30, 0x1.d13b1a2faed7dp+30, 0x1.da26c457ceb5ep-1, 0x1.acf3eec2cd23p-5, 0x1.3fb447a6f0172p-4, 0x1.e94b134fe3435p-7, "rwqe_burst_miss"},
};

TEST(PerfModelGolden, CcDisabledScenariosMatchPrePrOutputsBitForBit) {
  for (const GoldenRow& row : kGoldenRows) {
    const Subsystem sys = with_fabric(subsystem(row.sys),
                                      net::fabric_scenario(row.fabric));
    Rng rng(7);
    const SimResult r = evaluate(sys, golden_workload(row.workload), rng);
    const std::string tag = std::string(1, row.sys) + "/" + row.fabric +
                            "/w" + std::to_string(row.workload);
    EXPECT_EQ(r.rx_goodput_bps, row.rx_goodput_bps) << tag;
    EXPECT_EQ(r.tx_wire_bps, row.tx_wire_bps) << tag;
    EXPECT_EQ(r.pause_duration_ratio, row.pause_duration_ratio) << tag;
    EXPECT_EQ(r.fabric_pause_ratio, row.fabric_pause_ratio) << tag;
    EXPECT_EQ(r.wire_utilization, row.wire_utilization) << tag;
    EXPECT_EQ(r.pps_utilization, row.pps_utilization) << tag;
    EXPECT_STREQ(to_string(r.dominant), row.dominant) << tag;
    EXPECT_EQ(r.cc_suppressed_ratio, 0.0) << tag;
  }
}

// The compiled hot path must reproduce every pinned golden row bit-for-bit
// — through one EvalScratch reused across all 27 rows, which is exactly how
// a campaign worker drives it.  The uncompiled overload stays compiled-in
// as the reference; both are checked against the hexfloat pins and against
// each other, including the RNG stream position after each call.
TEST(PerfModelGolden, CompiledScenarioPathMatchesGoldenRowsBitForBit) {
  EvalScratch scratch;  // deliberately shared across rows
  for (const GoldenRow& row : kGoldenRows) {
    const Subsystem sys = with_fabric(subsystem(row.sys),
                                      net::fabric_scenario(row.fabric));
    const CompiledScenario compiled(sys);
    Rng rng(7);
    Rng ref_rng(7);
    const Workload w = golden_workload(row.workload);
    const SimResult& r = evaluate(compiled, w, rng, scratch);
    const std::string tag = std::string(1, row.sys) + "/" + row.fabric +
                            "/w" + std::to_string(row.workload);
    EXPECT_EQ(r.rx_goodput_bps, row.rx_goodput_bps) << tag;
    EXPECT_EQ(r.tx_wire_bps, row.tx_wire_bps) << tag;
    EXPECT_EQ(r.pause_duration_ratio, row.pause_duration_ratio) << tag;
    EXPECT_EQ(r.fabric_pause_ratio, row.fabric_pause_ratio) << tag;
    EXPECT_EQ(r.wire_utilization, row.wire_utilization) << tag;
    EXPECT_EQ(r.pps_utilization, row.pps_utilization) << tag;
    EXPECT_STREQ(to_string(r.dominant), row.dominant) << tag;
    EXPECT_EQ(r.cc_suppressed_ratio, 0.0) << tag;

    const SimResult ref = evaluate(sys, w, ref_rng);
    EXPECT_EQ(r.rx_pps, ref.rx_pps) << tag;
    EXPECT_EQ(r.tx_goodput_bps, ref.tx_goodput_bps) << tag;
    EXPECT_EQ(r.bottleneck_note, ref.bottleneck_note) << tag;
    ASSERT_EQ(r.epochs.size(), ref.epochs.size()) << tag;
    for (std::size_t e = 0; e < r.epochs.size(); ++e) {
      EXPECT_EQ(r.epochs[e].counters.perf, ref.epochs[e].counters.perf);
      EXPECT_EQ(r.epochs[e].counters.diag, ref.epochs[e].counters.diag);
      EXPECT_EQ(r.epochs[e].pause_fraction, ref.epochs[e].pause_fraction);
    }
    EXPECT_EQ(r.counters.perf, ref.counters.perf) << tag;
    EXPECT_EQ(rng.next_u64(), ref_rng.next_u64()) << tag;
  }
}

// Arming the fabric+NIC with a CC scenario changes nothing as long as the
// workload leaves its DCQCN reaction point off.
TEST(PerfModelGolden, CcArmedButWorkloadOffStillMatchesGoldens) {
  for (const GoldenRow& row : kGoldenRows) {
    const Subsystem sys = with_cc(
        with_fabric(subsystem(row.sys), net::fabric_scenario(row.fabric)),
        nic::cc_scenario("dcqcn"));
    ASSERT_TRUE(sys.cc_armed());
    Rng rng(7);
    Workload w = golden_workload(row.workload);
    w.dcqcn = false;
    const SimResult r = evaluate(sys, w, rng);
    EXPECT_EQ(r.rx_goodput_bps, row.rx_goodput_bps);
    EXPECT_EQ(r.pause_duration_ratio, row.pause_duration_ratio);
    EXPECT_EQ(r.fabric_pause_ratio, row.fabric_pause_ratio);
    EXPECT_EQ(r.wire_utilization, row.wire_utilization);
  }
}

// ---- Fan-in demand aggregation edge cases ---------------------------------

TEST(PerfModelFabric, SingleHotSenderBehindOversubscribedUplink) {
  // fan_in = 1 but a 2:1 uplink: the lone sender gets half its port rate.
  // This is the degenerate fan-in where the aggregation multiplier is 1 and
  // only the uplink constraint bites.
  Subsystem sys = subsystem('F');
  const double r = sys.nicm.line_rate_bps;
  sys.fabric = net::FabricSpec::tor_fanin(1, r, r, 2.0);
  EXPECT_DOUBLE_EQ(sys.fabric.uplink_bps(), r / 2.0);
  EXPECT_DOUBLE_EQ(sys.fabric.receiver_share_bps(), r / 2.0);
  Rng rng(7);
  const SimResult res = evaluate(sys, clean_write(), rng);
  // Half the offered load is paused away, all of it fabric-explained, and
  // the sender saturates its achievable share (healthy).
  EXPECT_NEAR(res.fabric_pause_ratio, 0.5, 0.02);
  EXPECT_GT(res.pause_duration_ratio, 0.45);
  EXPECT_GT(res.wire_utilization, 0.95);
  ASSERT_EQ(res.port_pause_ratio.size(), 2u);
}

TEST(PerfModelFabric, ZeroRatePortDeliversNothingWithoutNanOrUb) {
  // A dead receiver port: degenerate but must stay finite — the solver
  // treats a zero-capacity resource with live demand as infinitely
  // overloaded instead of ignoring it.
  Subsystem sys = subsystem('F');
  const double r = sys.nicm.line_rate_bps;
  sys.fabric = net::FabricSpec::heterogeneous_pair(r, 0.0);
  EXPECT_DOUBLE_EQ(sys.fabric.receiver_share_bps(), 0.0);
  Rng rng(7);
  const SimResult res = evaluate(sys, clean_write(), rng);
  EXPECT_TRUE(std::isfinite(res.wire_utilization));
  EXPECT_TRUE(std::isfinite(res.pps_utilization));
  EXPECT_TRUE(std::isfinite(res.rx_goodput_bps));
  EXPECT_LT(res.rx_goodput_bps, 0.01 * r);
  // Everything the sender offers is fabric-explained congestion.
  EXPECT_GT(res.fabric_pause_ratio, 0.95);
}

TEST(PerfModelFabric, UnityOversubscriptionLeavesUplinkUnbinding) {
  // fan_in = 4 with a 1:1 uplink: the receiver port itself, not the ToR
  // uplink, is what divides into per-sender shares.
  Subsystem sys = subsystem('F');
  const double r = sys.nicm.line_rate_bps;
  sys.fabric = net::FabricSpec::tor_fanin(4, r, r, 1.0);
  EXPECT_DOUBLE_EQ(sys.fabric.uplink_bps(), 4.0 * r);
  EXPECT_DOUBLE_EQ(sys.fabric.receiver_share_bps(), r / 4.0);
  Rng rng(7);
  const SimResult res = evaluate(sys, clean_write(), rng);
  EXPECT_NEAR(res.fabric_pause_ratio, 0.75, 0.02);
  EXPECT_GT(res.wire_utilization, 0.95);  // saturates the quarter share
  ASSERT_EQ(res.port_pause_ratio.size(), 5u);

  // The fully degenerate fan-in — one sender, matched rates, 1:1 uplink —
  // IS the paper's trivial pair, and must reproduce the seed bit-for-bit.
  sys.fabric = net::FabricSpec::tor_fanin(1, r, r, 1.0);
  EXPECT_TRUE(sys.fabric.trivial_pair(r));
  EXPECT_DOUBLE_EQ(sys.fabric.receiver_share_bps(), r);
  Rng rng2(7);
  const SimResult degenerate = evaluate(sys, clean_write(), rng2);
  Rng rng3(7);
  const SimResult base = evaluate(subsystem('F'), clean_write(), rng3);
  EXPECT_EQ(degenerate.rx_goodput_bps, base.rx_goodput_bps);
  EXPECT_EQ(degenerate.pause_duration_ratio, base.pause_duration_ratio);
  EXPECT_EQ(degenerate.fabric_pause_ratio, 0.0);
}

// ---- Congestion control ---------------------------------------------------

TEST(PerfModelCc, WellTunedDcqcnAbsorbsFanInCongestionWithoutPause) {
  const Subsystem sys =
      with_cc(with_fabric(subsystem('F'), net::fabric_scenario("fanin4")),
              nic::cc_scenario("dcqcn"));
  Workload w = clean_write();
  w.dcqcn = true;
  Rng rng(7);
  const SimResult r = evaluate(sys, w, rng);
  // ECN feedback rate-limits the senders to their fair share: the PFC storm
  // of the CC-off fanin4 run disappears, the suppressed demand is recorded,
  // and the flow still saturates its achievable share (healthy).
  EXPECT_LT(r.pause_duration_ratio, 0.01);
  EXPECT_GT(r.cc_suppressed_ratio, 0.5);
  EXPECT_GT(r.wire_utilization, 0.95);
  EXPECT_GT(r.cc_mark_probability, 0.0);
}

TEST(PerfModelCc, MistunedEcnThresholdsLeaveFabricAttributedPfcStorm) {
  // The acceptance scenario: DCQCN armed on fanin4, but the switch marking
  // thresholds sit beyond the PFC XOFF point.  ECN never reacts, the PFC
  // storm persists, and the model attributes it to the fabric — the
  // monitor sees heavy pause but must not call the subsystem anomalous.
  const Subsystem sys =
      with_cc(with_fabric(subsystem('F'), net::fabric_scenario("fanin4")),
              nic::cc_scenario("mistuned"));
  Workload w = clean_write();
  w.dcqcn = true;
  Rng rng(7);
  const SimResult r = evaluate(sys, w, rng);
  EXPECT_GT(r.pause_duration_ratio, 0.5);  // monitor-visible pause
  EXPECT_DOUBLE_EQ(r.cc_suppressed_ratio, 0.0);
  // ...all of it fabric-explained (within the monitor's headroom).
  EXPECT_GT(r.fabric_pause_ratio, 0.99 * r.pause_duration_ratio - 0.01);
  EXPECT_EQ(r.dominant, Bottleneck::kFabricCongestion);
}

TEST(PerfModelCc, MistunedReactionPointManufacturesLowThroughputAnomaly) {
  // Noisy Neighbor-style CC misconfiguration: a crippled additive-increase
  // step with a maximal EWMA gain leaves most of the path idle.
  const Subsystem sys =
      with_cc(with_fabric(subsystem('F'), net::fabric_scenario("fanin4")),
              nic::cc_scenario("dcqcn"));
  Workload w = clean_write();
  w.dcqcn = true;
  w.dcqcn_rate_ai_mbps = 1.0;
  w.dcqcn_g = 1.0;
  Rng rng(7);
  const SimResult r = evaluate(sys, w, rng);
  EXPECT_LT(r.wire_utilization, 0.8);
  EXPECT_LT(r.pps_utilization, 0.8);
  EXPECT_LT(r.pause_duration_ratio, 0.001);
  EXPECT_EQ(r.dominant, Bottleneck::kCcThrottled);
  EXPECT_GT(r.cc_suppressed_ratio, 0.9);

  // Healthier per-QP tuning on the same path restores the fair share.
  Workload good = w;
  good.dcqcn_rate_ai_mbps = 1000.0;
  good.dcqcn_g = 1.0 / 256.0;
  Rng rng2(7);
  const SimResult ok = evaluate(sys, good, rng2);
  EXPECT_GT(ok.wire_utilization, 0.9);
}

}  // namespace
}  // namespace collie::sim
