#include <gtest/gtest.h>

#include "sim/perf_model.h"
#include "sim/subsystem.h"

namespace collie::sim {
namespace {

Workload clean_write(int qps = 8, u64 msg = 64 * KiB) {
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = qps;
  w.wqe_batch = 8;
  w.mr_size = 1 * MiB;
  w.pattern = {msg};
  w.mtu = 4096;
  return w;
}

SimResult eval(char sys, const Workload& w, u64 seed = 7) {
  Rng rng(seed);
  return evaluate(subsystem(sys), w, rng);
}

TEST(PerfModel, HealthyWorkloadHitsLineRate) {
  for (char id : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}) {
    const SimResult r = eval(id, clean_write());
    EXPECT_GT(r.wire_utilization, 0.95) << "subsystem " << id;
    EXPECT_LT(r.pause_duration_ratio, 0.001) << "subsystem " << id;
    EXPECT_EQ(r.dominant, Bottleneck::kNone) << "subsystem " << id;
  }
}

TEST(PerfModel, TinyMessagesArePpsBoundNotAnomalous) {
  // 64B messages cannot reach the bps bound, but the wire-rate utilization
  // accounts for per-packet overhead, so a healthy NIC still shows as
  // spec-bound (the paper's definition counts either bound).
  Workload w = clean_write(64, 64);
  w.mtu = 1024;
  const SimResult r = eval('F', w);
  EXPECT_TRUE(r.wire_utilization > 0.8 || r.pps_utilization > 0.8);
  EXPECT_LT(r.pause_duration_ratio, 0.001);
}

TEST(PerfModel, DeterministicGivenSeed) {
  const SimResult a = eval('F', clean_write(), 99);
  const SimResult b = eval('F', clean_write(), 99);
  EXPECT_DOUBLE_EQ(a.rx_goodput_bps, b.rx_goodput_bps);
  EXPECT_DOUBLE_EQ(a.pause_duration_ratio, b.pause_duration_ratio);
}

TEST(PerfModel, EpochsCarryWarmupRamp) {
  Rng rng(3);
  SimConfig cfg;
  const SimResult r = evaluate(subsystem('F'), clean_write(), rng, cfg);
  ASSERT_EQ(static_cast<int>(r.epochs.size()), cfg.epochs);
  const double early = r.epochs[0].counters.get(PerfCounter::kTxGoodputBps);
  const double late = r.epochs.back().counters.get(PerfCounter::kTxGoodputBps);
  EXPECT_LT(early, 0.7 * late);
}

TEST(PerfModel, QpcScalabilityCliff) {
  // Root cause #2: sending rate collapses past the QPC cache capacity for
  // small unbatched messages (anomaly #7 family), monotonically in #QPs.
  Workload w = clean_write(8, 512);
  w.mr_size = 64 * KiB;  // keep the MTT working set out of the picture
  w.wqe_batch = 1;
  w.send_wq_depth = 16;
  w.recv_wq_depth = 16;
  w.mtu = 1024;
  double prev_util = 1.0;
  for (int qps : {8, 128, 480, 2000}) {
    w.num_qps = qps;
    const SimResult r = eval('F', w);
    EXPECT_LE(r.wire_utilization, prev_util + 0.05) << qps << " qps";
    prev_util = r.wire_utilization;
    if (qps >= 480) {
      EXPECT_LT(r.wire_utilization, 0.8) << qps << " qps";
      EXPECT_LT(r.pps_utilization, 0.8) << qps << " qps";
      EXPECT_EQ(r.dominant, Bottleneck::kQpcCacheMiss);
      EXPECT_LT(r.pause_duration_ratio, 0.001);  // sender-side: no pauses
    }
  }
}

TEST(PerfModel, LargeMessagesHideIcmMisses) {
  // Appendix A: "our real applications do not meet them even when the
  // number of QPs exceeds 10K" because large requests hide the miss.
  Workload w = clean_write(10000, 64 * KiB);
  const SimResult r = eval('F', w);
  EXPECT_GT(r.wire_utilization, 0.9);
  EXPECT_EQ(r.dominant, Bottleneck::kNone);
}

TEST(PerfModel, MrScalabilityCliff) {
  Workload w = clean_write(24, 512);
  w.wqe_batch = 1;
  w.mtu = 1024;
  w.mr_size = 64 * KiB;
  w.mrs_per_qp = 4;
  const SimResult ok = eval('F', w);
  EXPECT_GT(ok.wire_utilization, 0.9);
  w.mrs_per_qp = 1024;  // ~24K MRs
  const SimResult bad = eval('F', w);
  EXPECT_LT(bad.wire_utilization, 0.8);
  EXPECT_EQ(bad.dominant, Bottleneck::kMttCacheMiss);
}

TEST(PerfModel, ReadSmallMtuPacketBottleneck) {
  // Anomaly #3: RC READ of large messages collapses at MTU 1024 on the
  // 200G CX-6 and is clean at MTU >= 2048.
  Workload w = clean_write(8, 4 * MiB);
  w.opcode = Opcode::kRead;
  w.mr_size = 4 * MiB;
  w.mtu = 2048;
  EXPECT_GT(eval('F', w).wire_utilization, 0.9);
  w.mtu = 1024;
  const SimResult bad = eval('F', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.001);
  EXPECT_EQ(bad.dominant, Bottleneck::kReadPacketProcessing);
  // The 100G part has headroom: same workload stays clean (the paper's
  // "not a problem with 100 Gbps RNICs from the same vendor").
  EXPECT_LT(eval('D', w).pause_duration_ratio, 0.001);
}

TEST(PerfModel, OrderingStallNeedsAllConditions) {
  // Anomaly #9: bidirectional + small/large mix inside an SG list on the
  // strict-ordering platform.
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 8;
  w.wqe_batch = 8;
  w.mr_size = 4 * MiB;
  w.mtu = 4096;
  w.sge_per_wqe = 3;
  w.pattern = {128, 64 * KiB, 1024};
  w.bidirectional = true;
  const SimResult bad = eval('E', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.01);
  EXPECT_EQ(bad.dominant, Bottleneck::kPcieOrdering);

  Workload uni = w;
  uni.bidirectional = false;
  EXPECT_LT(eval('E', uni).pause_duration_ratio, 0.001);

  Workload uniform = w;
  uniform.pattern = {8 * KiB, 8 * KiB, 8 * KiB};
  EXPECT_LT(eval('E', uniform).pause_duration_ratio, 0.001);

  // Healthy platform (relaxed ordering effective): no stall.
  EXPECT_LT(eval('B', w).pause_duration_ratio, 0.001);
}

TEST(PerfModel, CrossSocketBidirectionalCollapse) {
  // Anomaly #11 on subsystem G: even one connection pauses when
  // bidirectional traffic crosses the weak socket interconnect.
  Workload w = clean_write(1, 256 * KiB);
  w.mr_size = 4 * MiB;
  w.wqe_batch = 16;
  w.bidirectional = true;
  w.remote_mem = {topo::MemKind::kDram, 2};  // socket 1 under NPS 2
  const SimResult bad = eval('G', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.001);
  EXPECT_EQ(bad.dominant, Bottleneck::kHostTopologyPath);
  // Unidirectional cross-socket is fine.
  Workload uni = w;
  uni.bidirectional = false;
  EXPECT_LT(eval('G', uni).pause_duration_ratio, 0.001);
  // Local memory bidirectional is fine.
  Workload local = w;
  local.remote_mem = {topo::MemKind::kDram, 0};
  EXPECT_LT(eval('G', local).pause_duration_ratio, 0.001);
}

TEST(PerfModel, LoopbackIncast) {
  // Anomaly #13: loopback + receive traffic pauses on the CX-6...
  Workload w = clean_write(16, 256 * KiB);
  w.mr_size = 4 * MiB;
  w.wqe_batch = 16;
  w.loopback = true;
  const SimResult bad = eval('F', w);
  EXPECT_GT(bad.pause_duration_ratio, 0.001);
  // ...but not on the P2100G, which rate-limits loopback traffic.
  Workload h = w;
  const SimResult ok = eval('H', h);
  EXPECT_LT(ok.pause_duration_ratio, 0.001);
}

TEST(PerfModel, UdBatchBurstPause) {
  // Anomaly #1 trigger boundaries: batch >= 64 AND recv WQ >= 256.
  Workload w;
  w.qp_type = QpType::kUD;
  w.opcode = Opcode::kSend;
  w.num_qps = 1;
  w.mtu = 2048;
  w.pattern = {2048};
  w.send_wq_depth = 256;
  w.recv_wq_depth = 256;
  w.wqe_batch = 64;
  EXPECT_GT(eval('F', w).pause_duration_ratio, 0.001);
  Workload small_batch = w;
  small_batch.wqe_batch = 16;
  EXPECT_LT(eval('F', small_batch).pause_duration_ratio, 0.001);
  Workload shallow = w;
  shallow.send_wq_depth = 128;
  shallow.recv_wq_depth = 128;
  EXPECT_LT(eval('F', shallow).pause_duration_ratio, 0.001);
}

TEST(PerfModel, ExperimentCostBounds) {
  // "Each experiment we do requires 20-60 seconds, mostly depending on the
  // number of QPs to create and the number of MRs to register" (§5).
  Workload small = clean_write(1);
  EXPECT_GE(experiment_cost_seconds(small), 20.0);
  EXPECT_LE(experiment_cost_seconds(small), 25.0);
  Workload big = clean_write(20000);
  big.mrs_per_qp = 10;
  EXPECT_GT(experiment_cost_seconds(big),
            experiment_cost_seconds(small));
  big.bidirectional = true;
  big.mrs_per_qp = 1000;
  EXPECT_LE(experiment_cost_seconds(big), 60.0);
}

// Property sweep: no workload may produce pause frames from a purely
// sender-side bottleneck, and utilizations stay in [0, ~1].
class PerfModelPropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(PerfModelPropertyTest, InvariantsHoldOnRandomWorkloads) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    Workload w = clean_write();
    // Scramble within valid ranges.
    w.qp_type = static_cast<QpType>(rng.uniform_int(0, 2));
    w.opcode = Opcode::kSend;
    if (transport_supports(w.qp_type, Opcode::kWrite) && rng.bernoulli(0.5)) {
      w.opcode = Opcode::kWrite;
    }
    w.num_qps = static_cast<int>(rng.log_uniform_int(1, 20000));
    w.wqe_batch = 1 << rng.uniform_int(0, 7);
    w.send_wq_depth = std::max(w.wqe_batch, 16 << rng.uniform_int(0, 6));
    w.recv_wq_depth = 16 << rng.uniform_int(0, 6);
    w.sge_per_wqe = static_cast<int>(rng.uniform_int(1, 4));
    w.mtu = 256u << rng.uniform_int(0, 4);
    w.mrs_per_qp = static_cast<int>(rng.log_uniform_int(1, 64));
    w.pattern.assign(static_cast<std::size_t>(rng.uniform_int(1, 8)),
                     1ull << rng.uniform_int(6, 16));
    if (w.qp_type == QpType::kUD) {
      // A UD datagram (sum of its SGEs) must fit one MTU.
      const u64 per_sge = std::max<u64>(
          1, w.mtu / static_cast<u32>(w.sge_per_wqe));
      for (u64& s : w.pattern) s = std::min<u64>(s, per_sge);
    }
    w.bidirectional = rng.bernoulli(0.5);
    ASSERT_TRUE(w.valid());

    const char sys = "FH"[rng.uniform_int(0, 1)];
    const SimResult r = eval(sys, w, rng.next_u64());
    EXPECT_GE(r.wire_utilization, 0.0);
    EXPECT_LE(r.wire_utilization, 1.1);
    EXPECT_GE(r.pps_utilization, 0.0);
    EXPECT_GE(r.pause_duration_ratio, 0.0);
    EXPECT_LE(r.pause_duration_ratio, 1.0);
    EXPECT_GE(r.rx_goodput_bps, 0.0);
    // Sender-side bottlenecks never pause.
    if (r.dominant == Bottleneck::kQpcCacheMiss ||
        r.dominant == Bottleneck::kMttCacheMiss ||
        r.dominant == Bottleneck::kMtuSchedulerQuirk ||
        r.dominant == Bottleneck::kRwqeSteadyMiss) {
      EXPECT_LT(r.pause_duration_ratio, 0.01)
          << to_string(r.dominant) << " " << w.describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerfModelPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- Fabric scenarios -----------------------------------------------------

// The acceptance bar for the N-port generalization: applying the "pair"
// scenario must reproduce the catalog subsystem bit-for-bit, pause ratios
// included.
TEST(PerfModelFabric, PairScenarioReproducesBaselineExactly) {
  for (char id : {'A', 'F', 'H'}) {
    const Subsystem& base = subsystem(id);
    const Subsystem paired = with_fabric(base, net::fabric_scenario("pair"));
    for (const u64 seed : {u64{7}, u64{19}}) {
      for (const Workload& w :
           {clean_write(), clean_write(2048, 512), clean_write(64, 4 * KiB)}) {
        Rng rng_a(seed);
        Rng rng_b(seed);
        const SimResult a = evaluate(base, w, rng_a);
        const SimResult b = evaluate(paired, w, rng_b);
        EXPECT_DOUBLE_EQ(a.pause_duration_ratio, b.pause_duration_ratio);
        EXPECT_DOUBLE_EQ(a.rx_goodput_bps, b.rx_goodput_bps);
        EXPECT_DOUBLE_EQ(a.wire_utilization, b.wire_utilization);
        EXPECT_DOUBLE_EQ(a.pps_utilization, b.pps_utilization);
        EXPECT_EQ(a.dominant, b.dominant);
        EXPECT_DOUBLE_EQ(a.fabric_pause_ratio, 0.0);
        EXPECT_DOUBLE_EQ(b.fabric_pause_ratio, 0.0);
      }
    }
  }
}

TEST(PerfModelFabric, HeteroPairCongestsTheSlowPort) {
  const Subsystem hetero =
      with_fabric(subsystem('F'), net::fabric_scenario("hetero"));
  // Host B runs a GPU-less platform in the catalog hetero scenario.
  EXPECT_TRUE(hetero.host_b.gpus.empty());
  EXPECT_FALSE(hetero.host.gpus.empty());
  // A wire-saturating sender offers 200G into the 100G port: the switch
  // backpressures it with PFC, and the model attributes that pause to the
  // fabric, not to the subsystem.
  Rng rng(7);
  const SimResult r = evaluate(hetero, clean_write(), rng);
  EXPECT_GT(r.fabric_pause_ratio, 0.2);
  EXPECT_GT(r.pause_duration_ratio, 0.2);
  // Delivered traffic saturates the achievable (port-capped) wire bound, so
  // the workload is healthy by the utilization condition.
  EXPECT_GT(r.wire_utilization, 0.9);
}

TEST(PerfModelFabric, TorFanInScalesExpectedPause) {
  const Subsystem fanin =
      with_fabric(subsystem('F'), net::fabric_scenario("fanin4"));
  Rng rng(7);
  const SimResult r = evaluate(fanin, clean_write(), rng);
  // Four senders share one 4:1-oversubscribed receiver: each gets a quarter
  // share, so three quarters of the offered load is paused away.
  EXPECT_GT(r.fabric_pause_ratio, 0.6);
  EXPECT_GT(r.pause_duration_ratio, 0.6);
  // Per-port accounting covers every fabric port (A, B, 3 co-senders).
  ASSERT_EQ(r.port_pause_ratio.size(), 5u);

  // The reverse direction shares host B's egress the same way: a READ
  // workload (data flows B -> A) saturating its quarter share is healthy,
  // not a low-throughput anomaly.
  Workload read = clean_write();
  read.opcode = Opcode::kRead;
  Rng rng_read(7);
  const SimResult rr = evaluate(fanin, read, rng_read);
  EXPECT_GT(rr.wire_utilization, 0.9);
  EXPECT_LT(rr.pause_duration_ratio, 0.001);

  // Against a milder 2:1 fan-in the expected pause shrinks.
  net::FabricScenario mild = net::fabric_scenario("fanin4");
  mild.fan_in = 2;
  mild.oversubscription = 2.0;
  Rng rng2(7);
  const SimResult r2 =
      evaluate(with_fabric(subsystem('F'), mild), clean_write(), rng2);
  EXPECT_LT(r2.fabric_pause_ratio, r.fabric_pause_ratio);
}

}  // namespace
}  // namespace collie::sim
