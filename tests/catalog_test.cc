#include <gtest/gtest.h>

#include "catalog/anomalies.h"

namespace collie::catalog {
namespace {

TEST(Catalog, IdsAreUniqueAndOrdered) {
  int expected = 1;
  for (const auto& a : all_anomalies()) {
    EXPECT_EQ(a.id, expected++);
  }
  EXPECT_EQ(anomaly(4).id, 4);
  EXPECT_THROW(anomaly(0), std::out_of_range);
  EXPECT_THROW(anomaly(19), std::out_of_range);
}

TEST(Catalog, ConcreteSettingsAreValidWorkloads) {
  for (const auto& a : all_anomalies()) {
    std::string why;
    EXPECT_TRUE(a.concrete.valid(&why)) << "anomaly #" << a.id << ": " << why;
  }
}

TEST(Catalog, ChipsMatchSubsystems) {
  for (const auto& a : all_anomalies()) {
    if (a.primary_subsystem == 'H') {
      EXPECT_EQ(a.chip, "P2100") << a.id;
    } else {
      EXPECT_EQ(a.chip, "CX-6") << a.id;
    }
  }
}

TEST(Catalog, KnownAnomaliesAreMarkedOld) {
  // Table 2: #9, #12, #13 were known before Collie was built.
  for (int id : {9, 12, 13}) {
    EXPECT_FALSE(anomaly(id).is_new) << id;
  }
  for (int id : {1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 14, 15, 16, 17, 18}) {
    EXPECT_TRUE(anomaly(id).is_new) << id;
  }
}

TEST(Catalog, LabelRequiresSymptomMatch) {
  const AnomalyInfo& a1 = anomaly(1);
  const auto with_pause =
      label("CX-6", a1.concrete, Symptom::kPauseFrames);
  EXPECT_NE(std::find(with_pause.begin(), with_pause.end(), 1),
            with_pause.end());
  const auto with_tput =
      label("CX-6", a1.concrete, Symptom::kLowThroughput);
  EXPECT_EQ(std::find(with_tput.begin(), with_tput.end(), 1),
            with_tput.end());
}

TEST(Catalog, LabelFiltersChip) {
  const AnomalyInfo& a15 = anomaly(15);
  const auto on_p2100 =
      label("P2100", a15.concrete, Symptom::kPauseFrames);
  EXPECT_NE(std::find(on_p2100.begin(), on_p2100.end(), 15),
            on_p2100.end());
  const auto on_cx6 = label("CX-6", a15.concrete, Symptom::kPauseFrames);
  EXPECT_EQ(std::find(on_cx6.begin(), on_cx6.end(), 15), on_cx6.end());
}

TEST(Catalog, MechanismLabelerDistinguishesGpuFromDram) {
  // Same ordering mechanism, different anomaly depending on placement.
  Workload dram = anomaly(9).concrete;
  Workload gpu = anomaly(12).concrete;
  EXPECT_EQ(label_by_mechanism("CX-6", dram, sim::Bottleneck::kPcieOrdering,
                               Symptom::kPauseFrames),
            9);
  EXPECT_EQ(label_by_mechanism("CX-6", gpu, sim::Bottleneck::kPcieOrdering,
                               Symptom::kPauseFrames),
            12);
}

TEST(Catalog, MechanismLabelerDistinguishesTransport) {
  EXPECT_EQ(label_by_mechanism("CX-6", anomaly(1).concrete,
                               sim::Bottleneck::kRwqeBurstMiss,
                               Symptom::kPauseFrames),
            1);
  EXPECT_EQ(label_by_mechanism("CX-6", anomaly(5).concrete,
                               sim::Bottleneck::kRwqeBurstMiss,
                               Symptom::kPauseFrames),
            5);
  EXPECT_EQ(label_by_mechanism("P2100", anomaly(15).concrete,
                               sim::Bottleneck::kRwqeBurstMiss,
                               Symptom::kPauseFrames),
            15);
}

TEST(Catalog, MechanismLabelerUnknownReturnsZero) {
  EXPECT_EQ(label_by_mechanism("CX-6", anomaly(1).concrete,
                               sim::Bottleneck::kNone,
                               Symptom::kPauseFrames),
            0);
  EXPECT_EQ(label_by_mechanism("CX-5", anomaly(7).concrete,
                               sim::Bottleneck::kQpcCacheMiss,
                               Symptom::kLowThroughput),
            0);
}

TEST(Catalog, MechanismLabelerAttributesFabricCongestionByScenario) {
  // Fabric-level mechanisms label by the scenario the discovery ran under,
  // not by the RNIC chip: 101 = hetero port-rate mismatch, 102 = fanin4
  // ToR oversubscription, unlabeled on the paper's identical pair.
  const Workload w = anomaly(1).concrete;
  EXPECT_EQ(label_by_mechanism("CX-6", "hetero", w,
                               sim::Bottleneck::kFabricCongestion,
                               Symptom::kPauseFrames),
            101);
  EXPECT_EQ(label_by_mechanism("P2100", "hetero", w,
                               sim::Bottleneck::kFabricCongestion,
                               Symptom::kPauseFrames),
            101);
  EXPECT_EQ(label_by_mechanism("CX-6", "fanin4", w,
                               sim::Bottleneck::kFabricCongestion,
                               Symptom::kLowThroughput),
            102);
  EXPECT_EQ(label_by_mechanism("CX-6", "pair", w,
                               sim::Bottleneck::kFabricCongestion,
                               Symptom::kPauseFrames),
            0);
  // The 4-arg shorthand is the pair fabric.
  EXPECT_EQ(label_by_mechanism("CX-6", w,
                               sim::Bottleneck::kFabricCongestion,
                               Symptom::kPauseFrames),
            0);
  // NIC-level mechanisms ignore the fabric: same row under any scenario.
  EXPECT_EQ(label_by_mechanism("CX-6", "hetero", anomaly(7).concrete,
                               sim::Bottleneck::kQpcCacheMiss,
                               Symptom::kLowThroughput),
            7);
}

TEST(Catalog, RegionsRejectForeignWorkloads) {
  // A plain clean workload matches no region of its symptom class.
  Workload clean;
  clean.qp_type = QpType::kRC;
  clean.opcode = Opcode::kWrite;
  clean.num_qps = 8;
  clean.wqe_batch = 8;
  clean.mr_size = 1 * MiB;
  clean.pattern = {64 * KiB};
  EXPECT_TRUE(label("CX-6", clean, Symptom::kPauseFrames).empty());
  EXPECT_TRUE(label("CX-6", clean, Symptom::kLowThroughput).empty());
}

TEST(Catalog, SymptomStrings) {
  EXPECT_STREQ(to_string(Symptom::kPauseFrames), "pause frame");
  EXPECT_STREQ(to_string(Symptom::kLowThroughput), "low throup.");
}

}  // namespace
}  // namespace collie::catalog
