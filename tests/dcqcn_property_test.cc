// Property tests for the DCQCN rate limiter and the ECN co-simulation:
// randomized parameter/threshold sweeps pinning the invariants the
// performance model's CC fixed point relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "nic/dcqcn.h"

namespace collie::nic {
namespace {

DcqcnParams random_params(Rng& rng) {
  DcqcnParams p;
  p.enabled = true;
  const std::vector<double> gs{0.001, 1.0 / 256.0, 1.0 / 64.0, 0.25, 1.0};
  p.g = gs[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<i64>(gs.size()) - 1))];
  p.rate_ai_bps = mbps(rng.uniform(1.0, 5000.0));
  p.fast_recovery_rounds = static_cast<int>(rng.uniform_int(1, 8));
  p.min_rate_bps = mbps(rng.uniform(1.0, 100.0));
  return p;
}

net::EcnParams random_ecn(Rng& rng) {
  net::EcnParams ecn;
  ecn.enabled = true;
  ecn.queue_cap_bytes = 2.0 * MiB;
  ecn.xoff_bytes = 0.7 * ecn.queue_cap_bytes;
  const double kmin_frac = rng.uniform(0.01, 0.6);
  ecn.kmin_bytes = kmin_frac * ecn.queue_cap_bytes;
  ecn.kmax_bytes =
      std::min(ecn.xoff_bytes,
               ecn.kmin_bytes + rng.uniform(0.05, 0.3) * ecn.queue_cap_bytes);
  ecn.pmax = rng.uniform(0.01, 1.0);
  return ecn;
}

class DcqcnProperty : public ::testing::TestWithParam<u64> {};

// Invariants under an arbitrary CNP arrival process: alpha stays a
// probability, the rate stays within [min_rate, line rate].
TEST_P(DcqcnProperty, AlphaAndRateStayBounded) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const DcqcnParams p = random_params(rng);
    const double line = gbps(rng.uniform(10.0, 400.0));
    DcqcnRateLimiter lim(p, line, rng.uniform(0.0, 2.0) * line);
    for (int i = 0; i < 2000; ++i) {
      // Bursty on/off CNP arrivals at up to 4 CNPs per update period.
      const double cnp_rate =
          rng.bernoulli(0.5) ? rng.uniform(0.0, 4.0 / p.update_interval_s)
                             : 0.0;
      lim.step(rng.uniform(0.0, 5.0 * p.update_interval_s), cnp_rate);
      ASSERT_GE(lim.alpha(), 0.0);
      ASSERT_LE(lim.alpha(), 1.0);
      ASSERT_GE(lim.rate_bps(), lim.params().min_rate_bps - 1.0);
      ASSERT_LE(lim.rate_bps(), line + 1.0);
    }
  }
}

// Once CNPs stop, recovery is monotone: the rate never decreases again, and
// alpha decays toward zero.
TEST_P(DcqcnProperty, RecoveryAfterCnpsStopIsMonotone) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 20; ++trial) {
    const DcqcnParams p = random_params(rng);
    const double line = gbps(rng.uniform(10.0, 400.0));
    DcqcnRateLimiter lim(p, line, line);
    // Congest hard for a while.
    for (int i = 0; i < 500; ++i) {
      lim.step(p.update_interval_s, 2.0 / p.update_interval_s);
    }
    const double cut_rate = lim.rate_bps();
    EXPECT_LT(cut_rate, line);
    // Then silence: the rate must climb monotonically back.
    double prev = lim.rate_bps();
    double prev_alpha = lim.alpha();
    for (int i = 0; i < 5000; ++i) {
      lim.step(p.update_interval_s, 0.0);
      ASSERT_GE(lim.rate_bps(), prev - 1e-6) << "trial " << trial;
      ASSERT_LE(lim.alpha(), prev_alpha + 1e-12);
      prev = lim.rate_bps();
      prev_alpha = lim.alpha();
    }
    EXPECT_GT(lim.rate_bps(), cut_rate);
    EXPECT_LT(lim.alpha(), 0.05);
  }
}

// The steady-state co-simulation under randomized quirk/threshold sweeps:
// the converged rate is positive, never exceeds the offer, and a congested
// path with markable thresholds is actually throttled.
TEST_P(DcqcnProperty, SteadyStateConvergesWithinBounds) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 12; ++trial) {
    const DcqcnParams p = random_params(rng);
    const net::EcnParams ecn = random_ecn(rng);
    const double line = gbps(200);
    const double capacity = gbps(rng.uniform(5.0, 100.0));
    const double offered = capacity * rng.uniform(1.05, 4.0);
    const CcSteadyState ss = solve_cc_steady_state(
        offered, capacity, line, rng.uniform(1.0, 64.0), ecn, p,
        rng.uniform(256.0, 4178.0));
    ASSERT_GE(ss.rate_bps, p.min_rate_bps * 0.5);
    ASSERT_LE(ss.rate_bps, offered + 1.0);
    EXPECT_TRUE(ss.throttled);
    EXPECT_GE(ss.mark_probability, 0.0);
    EXPECT_LE(ss.mark_probability, 1.0);
    EXPECT_LE(ss.queue_bytes, ecn.occupancy_ceiling_bytes() + 1.0);
  }
}

// Pass-through regimes: no congestion, disarmed CC, or marking thresholds
// parked beyond the PFC ceiling (the mistuned configuration) all leave the
// offer untouched.
TEST_P(DcqcnProperty, PassThroughRegimes) {
  Rng rng(GetParam() + 300);
  const DcqcnParams p = random_params(rng);
  net::EcnParams ecn = random_ecn(rng);
  const double line = gbps(200);

  // Uncongested path.
  CcSteadyState ss =
      solve_cc_steady_state(gbps(40), gbps(50), line, 8, ecn, p, 4096);
  EXPECT_FALSE(ss.throttled);
  EXPECT_DOUBLE_EQ(ss.rate_bps, gbps(40));

  // Disarmed reaction point.
  DcqcnParams off = p;
  off.enabled = false;
  ss = solve_cc_steady_state(gbps(200), gbps(50), line, 8, ecn, off, 4096);
  EXPECT_FALSE(ss.throttled);
  EXPECT_DOUBLE_EQ(ss.rate_bps, gbps(200));

  // Mistuned thresholds: Kmin at/beyond the PFC XOFF ceiling never marks.
  net::EcnParams mistuned = ecn;
  mistuned.kmin_bytes = mistuned.xoff_bytes;
  mistuned.kmax_bytes = mistuned.queue_cap_bytes;
  EXPECT_FALSE(mistuned.can_mark());
  ss = solve_cc_steady_state(gbps(200), gbps(50), line, 8, mistuned, p, 4096);
  EXPECT_FALSE(ss.throttled);
  EXPECT_DOUBLE_EQ(ss.rate_bps, gbps(200));
}

// Tuning gradient: a crippled reaction point (minimal additive increase,
// maximal EWMA gain — every cut is a halving, recovery crawls) converges
// far below a healthy one on the same congested path.  This is the slope
// the CC-parameter search climbs.  (Note the property is deliberately
// about *stark* mistuning: within the healthy band the limit cycle is not
// monotone in R_AI — a hotter increase also provokes more marking.)
TEST_P(DcqcnProperty, CrippledTuningUndershootsHealthyTuning) {
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 6; ++trial) {
    DcqcnParams p = random_params(rng);
    const net::EcnParams ecn = random_ecn(rng);
    const double capacity = gbps(rng.uniform(10.0, 50.0));
    const double offered = capacity * rng.uniform(1.5, 3.0);
    p.rate_ai_bps = mbps(2000);
    p.g = 1.0 / 256.0;
    const CcSteadyState healthy = solve_cc_steady_state(
        offered, capacity, gbps(200), 16, ecn, p, 4096);
    p.rate_ai_bps = mbps(1);
    p.g = 1.0;
    const CcSteadyState crippled = solve_cc_steady_state(
        offered, capacity, gbps(200), 16, ecn, p, 4096);
    // Across arbitrary thresholds the crippled limiter is never materially
    // better than the healthy one.  Fast recovery can mask mild overload
    // and limit-cycle averaging wiggles by ~10%, so the universal bound is
    // loose — the canonical heavy-overload case below carries the sharp
    // claim.
    EXPECT_LE(crippled.rate_bps, healthy.rate_bps * 1.15)
        << "trial " << trial;
    EXPECT_GT(healthy.rate_bps, 0.5 * capacity) << "trial " << trial;
  }

  // Canonical heavy-overload point (the fanin4 shape: ~4x oversubscribed,
  // catalog "dcqcn" thresholds): here the undershoot is stark — this is
  // the anomaly surface the CC-parameter search discovers.
  const net::EcnParams ecn = cc_scenario("dcqcn").materialize_ecn(2.0 * MiB);
  DcqcnParams p;
  p.enabled = true;
  p.rate_ai_bps = mbps(1000);
  p.g = 1.0 / 256.0;
  const CcSteadyState healthy =
      solve_cc_steady_state(gbps(190), gbps(50), gbps(200), 8, ecn, p, 4178);
  p.rate_ai_bps = mbps(1);
  p.g = 1.0;
  const CcSteadyState crippled =
      solve_cc_steady_state(gbps(190), gbps(50), gbps(200), 8, ecn, p, 4178);
  EXPECT_GT(healthy.rate_bps, gbps(42));   // within ~15% of capacity
  EXPECT_LT(crippled.rate_bps, gbps(25));  // leaves half the path idle
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcqcnProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// The catalog contract the campaign axis relies on.
TEST(CcScenario, CatalogAndMaterialize) {
  const auto names = cc_scenario_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "off");
  EXPECT_EQ(names[1], "dcqcn");
  EXPECT_EQ(names[2], "mistuned");
  EXPECT_EQ(find_cc_scenario("no-such-cc"), nullptr);
  EXPECT_THROW(cc_scenario("no-such-cc"), std::invalid_argument);

  EXPECT_FALSE(cc_scenario("off").enabled);

  const net::EcnParams tuned =
      cc_scenario("dcqcn").materialize_ecn(2.0 * MiB);
  EXPECT_TRUE(tuned.enabled);
  EXPECT_TRUE(tuned.can_mark());
  EXPECT_LT(tuned.kmin_bytes, tuned.xoff_bytes);

  // The mistuned thresholds sit beyond the PFC ceiling on purpose.
  const net::EcnParams mistuned =
      cc_scenario("mistuned").materialize_ecn(2.0 * MiB);
  EXPECT_TRUE(mistuned.enabled);
  EXPECT_FALSE(mistuned.can_mark());
}

}  // namespace
}  // namespace collie::nic
