#include <gtest/gtest.h>

#include "pcie/pcie.h"

namespace collie::pcie {
namespace {

LinkSpec gen3() {
  LinkSpec l;
  l.gen = Gen::kGen3;
  l.lanes = 16;
  return l;
}

LinkSpec gen4() {
  LinkSpec l;
  l.gen = Gen::kGen4;
  l.lanes = 16;
  return l;
}

TEST(Pcie, RawBandwidth) {
  // Gen3 x16: 8 GT/s * 16 * 128/130 ~ 126 Gbps.
  EXPECT_NEAR(to_gbps(raw_bandwidth_bps(gen3())), 126.0, 1.0);
  // Gen4 doubles it.
  EXPECT_NEAR(raw_bandwidth_bps(gen4()), 2.0 * raw_bandwidth_bps(gen3()),
              1e6);
}

TEST(Pcie, TlpEfficiencyGrowsWithChunk) {
  const LinkSpec l = gen3();
  EXPECT_LT(tlp_efficiency(l, 64), tlp_efficiency(l, 256));
  // Payload is capped at max_payload; larger chunks gain nothing.
  EXPECT_DOUBLE_EQ(tlp_efficiency(l, 256), tlp_efficiency(l, 4096));
  EXPECT_EQ(tlp_efficiency(l, 0), 0.0);
}

TEST(Pcie, EffectiveBandwidthAboveLineRateForBigTransfers) {
  // Gen4 x16 must comfortably exceed 200 Gbps for bulk DMA; that is why a
  // healthy subsystem F is wire-bound, not PCIe-bound.
  EXPECT_GT(effective_bandwidth_bps(gen4(), 4096), gbps(200));
  // And gen3 x16 exceeds 100 Gbps.
  EXPECT_GT(effective_bandwidth_bps(gen3(), 4096), gbps(100));
}

TEST(Pcie, DmaReadLatencyIncludesPath) {
  topo::DmaPath local;
  local.latency_ns = 80;
  topo::DmaPath cross = local;
  cross.latency_ns = 300;
  EXPECT_GT(dma_read_latency_ns(gen3(), cross),
            dma_read_latency_ns(gen3(), local));
  EXPECT_LT(dma_read_latency_ns(gen4(), local),
            dma_read_latency_ns(gen3(), local));
}

OrderingLoad mixed_load() {
  OrderingLoad load;
  load.bidirectional = true;
  load.small_write_rate = 2.0;
  load.large_write_rate = 1.0;
  load.completion_rate = 1.0;
  return load;
}

TEST(Ordering, NoStallWithRelaxedOrdering) {
  LinkSpec l = gen4();
  l.relaxed_ordering_effective = true;
  EXPECT_EQ(ordering_stall_fraction(l, mixed_load()), 0.0);
}

TEST(Ordering, ForcedRelaxedOrderingIsTheFix) {
  // Anomaly #9's fix: configure the RNIC as a forced relaxed-ordering
  // device.
  LinkSpec l = gen4();
  l.relaxed_ordering_effective = false;
  EXPECT_GT(ordering_stall_fraction(l, mixed_load()), 0.3);
  l.forced_relaxed_ordering = true;
  EXPECT_EQ(ordering_stall_fraction(l, mixed_load()), 0.0);
}

TEST(Ordering, RequiresBidirectionalMix) {
  LinkSpec l = gen4();
  l.relaxed_ordering_effective = false;
  OrderingLoad load = mixed_load();
  load.bidirectional = false;
  EXPECT_EQ(ordering_stall_fraction(l, load), 0.0);
  load = mixed_load();
  load.small_write_rate = 0.0;
  EXPECT_EQ(ordering_stall_fraction(l, load), 0.0);
  load = mixed_load();
  load.large_write_rate = 0.0;
  EXPECT_EQ(ordering_stall_fraction(l, load), 0.0);
}

TEST(Ordering, MonotoneInBlockers) {
  LinkSpec l = gen4();
  l.relaxed_ordering_effective = false;
  OrderingLoad a = mixed_load();
  OrderingLoad b = mixed_load();
  b.small_write_rate = 8.0;
  EXPECT_GT(ordering_stall_fraction(l, b), ordering_stall_fraction(l, a));
  // Bounded by the ceiling.
  b.small_write_rate = 1e9;
  EXPECT_LE(ordering_stall_fraction(l, b), 0.72 + 1e-9);
}

TEST(Pcie, ToStringMatchesTable1Format) {
  EXPECT_EQ(to_string(gen3()), "3.0 x 16");
  EXPECT_EQ(to_string(gen4()), "4.0 x 16");
}

}  // namespace
}  // namespace collie::pcie
