#include <gtest/gtest.h>

#include "sim/subsystem.h"

namespace collie::sim {
namespace {

TEST(Subsystem, CatalogHasEightEntries) {
  const auto ids = all_subsystem_ids();
  ASSERT_EQ(ids.size(), 8u);
  for (char c = 'A'; c <= 'H'; ++c) {
    EXPECT_NO_THROW(subsystem(c));
  }
  EXPECT_THROW(subsystem('Z'), std::out_of_range);
}

TEST(Subsystem, Table1Speeds) {
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('A').nicm.line_rate_bps), 25.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('B').nicm.line_rate_bps), 100.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('C').nicm.line_rate_bps), 100.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('D').nicm.line_rate_bps), 100.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('E').nicm.line_rate_bps), 200.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('F').nicm.line_rate_bps), 200.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('G').nicm.line_rate_bps), 200.0);
  EXPECT_DOUBLE_EQ(to_gbps(subsystem('H').nicm.line_rate_bps), 100.0);
}

TEST(Subsystem, Table1Chips) {
  EXPECT_EQ(subsystem('A').nicm.chip, "CX-5");
  EXPECT_EQ(subsystem('D').nicm.chip, "CX-6");
  EXPECT_EQ(subsystem('H').nicm.chip, "P2100");
}

TEST(Subsystem, GpuPresence) {
  EXPECT_TRUE(subsystem('B').host.gpus.empty());
  EXPECT_FALSE(subsystem('C').host.gpus.empty());  // V100
  EXPECT_FALSE(subsystem('E').host.gpus.empty());  // A100
  EXPECT_FALSE(subsystem('F').host.gpus.empty());  // A100
  EXPECT_TRUE(subsystem('G').host.gpus.empty());
}

TEST(Subsystem, PlatformQuirkFlags) {
  // E and F carry the strict-ordering root complex; B-D do not.
  EXPECT_FALSE(subsystem('B').link.relaxed_ordering_effective == false);
  EXPECT_TRUE(subsystem('E').link.relaxed_ordering_effective == false);
  EXPECT_TRUE(subsystem('F').link.relaxed_ordering_effective == false);
  // G is the weak-cross-socket AMD platform of anomaly #11.
  EXPECT_LT(subsystem('G').host.cross_socket_quality, 1.0);
  EXPECT_EQ(subsystem('G').host.numa_per_socket, 2);  // NPS 2 in Table 1
}

TEST(Subsystem, SpecBounds) {
  for (char id : all_subsystem_ids()) {
    const Subsystem& s = subsystem(id);
    EXPECT_GT(s.wire_bps_cap(), 0.0);
    EXPECT_GT(s.pps_cap(), 0.0);
    EXPECT_FALSE(s.summary().empty());
  }
}

}  // namespace
}  // namespace collie::sim
