#include <gtest/gtest.h>

#include "core/report.h"
#include "sim/subsystem.h"

namespace collie::core {
namespace {

TEST(Json, BasicDocument) {
  JsonWriter j;
  j.begin_object()
      .field("a", 1)
      .field("b", "x\"y")
      .field("c", true)
      .begin_array("xs");
  j.value(1).value(2.5);
  j.end_array().end_object();
  EXPECT_EQ(j.str(), R"({"a":1,"b":"x\"y","c":true,"xs":[1,2.5]})");
}

// Regression: closing a nested container must re-arm the parent's comma —
// every sibling that followed an object/array used to lose its separator,
// producing invalid documents like `{"xs":[]"b":2}`.
TEST(Json, SiblingAfterNestedContainerGetsComma) {
  JsonWriter j;
  j.begin_object();
  j.begin_array("xs").end_array();
  j.field("b", 2);
  j.key("o");
  j.begin_object().field("c", 3).end_object();
  j.begin_array("ys");
  j.value(1);
  j.end_array();
  j.field("d", 4).end_object();
  EXPECT_EQ(j.str(), R"({"xs":[],"b":2,"o":{"c":3},"ys":[1],"d":4})");
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\nb\\c\"d"), "a\\nb\\\\c\\\"d");
}

TEST(Json, NonFiniteBecomesNull) {
  JsonWriter j;
  j.begin_object().field("inf", std::numeric_limits<double>::infinity());
  j.end_object();
  EXPECT_EQ(j.str(), R"({"inf":null})");
}

TEST(Report, WorkloadJsonHasAllDimensions) {
  Workload w;
  w.pattern = {64 * KiB, 128};
  w.bidirectional = true;
  JsonWriter j;
  workload_to_json(w, &j);
  const std::string out = j.str();
  for (const char* key :
       {"qp_type", "opcode", "num_qps", "wqe_batch", "sge_per_wqe",
        "send_wq_depth", "recv_wq_depth", "mrs_per_qp", "mr_size", "mtu",
        "bidirectional", "loopback", "local_mem", "remote_mem", "pattern"}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  EXPECT_NE(out.find("65536,128"), std::string::npos);
}

SearchResult fake_result() {
  SearchResult r;
  r.experiments = 42;
  r.elapsed_seconds = 1234.5;
  r.mfs_skips = 7;
  FoundAnomaly f;
  f.found_at_seconds = 600.0;
  f.experiment_index = 21;
  f.dominant = sim::Bottleneck::kRwqeBurstMiss;
  f.verdict.symptom = Symptom::kPauseFrames;
  f.verdict.pause_duration_ratio = 0.2;
  f.mfs.symptom = Symptom::kPauseFrames;
  f.mfs.witness.pattern = {2048};
  FeatureCondition c;
  c.feature = Feature::kWqeBatch;
  c.categorical = false;
  c.lo = 64;
  f.mfs.conditions.push_back(c);
  r.found.push_back(f);
  TracePoint tp;
  tp.t_seconds = 30.0;
  tp.counter_value = 12345.0;
  tp.anomaly_found = true;
  r.trace.push_back(tp);
  return r;
}

TEST(Report, SearchResultJson) {
  SearchSpace space(sim::subsystem('F'));
  const std::string out =
      search_result_to_json(space, fake_result(), /*include_trace=*/true);
  EXPECT_NE(out.find("\"experiments\":42"), std::string::npos);
  EXPECT_NE(out.find("rwqe_burst_miss"), std::string::npos);
  EXPECT_NE(out.find("pause frame"), std::string::npos);
  EXPECT_NE(out.find("wqe_batch >= 64"), std::string::npos);
  EXPECT_NE(out.find("\"trace\""), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(Report, TraceCsv) {
  const std::string csv = trace_to_csv(fake_result());
  EXPECT_NE(csv.find("t_seconds,counter_value"), std::string::npos);
  EXPECT_NE(csv.find("30,12345,0,1,0"), std::string::npos);
}

TEST(Report, MfsReportIsReadable) {
  SearchSpace space(sim::subsystem('F'));
  const std::string rep = mfs_report(space, fake_result());
  EXPECT_NE(rep.find("1 anomaly region"), std::string::npos);
  EXPECT_NE(rep.find("wqe_batch >= 64"), std::string::npos);
  EXPECT_NE(rep.find("break any one"), std::string::npos);
}

TEST(Json, RawValueSplicesWithCommaHandling) {
  JsonWriter json;
  json.begin_object();
  json.field("a", 1);
  json.key("embedded");
  json.raw_value("{\"x\":[1,2]}");
  json.field("b", 2);
  json.begin_array("list");
  json.raw_value("3");
  json.raw_value("{\"y\":4}");
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"a\":1,\"embedded\":{\"x\":[1,2]},\"b\":2,"
            "\"list\":[3,{\"y\":4}]}");
}

}  // namespace
}  // namespace collie::core
