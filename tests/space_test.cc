#include <gtest/gtest.h>

#include "core/space.h"
#include "sim/subsystem.h"

namespace collie::core {
namespace {

class SpaceTest : public ::testing::Test {
 protected:
  SpaceTest() : space_(sim::subsystem('F')) {}
  SearchSpace space_;
};

TEST_F(SpaceTest, SizeIsAstronomical) {
  // The paper quotes ~10^36 for the full space; ours is within a few orders
  // of magnitude of that.
  EXPECT_GT(space_.log10_size(), 20.0);
}

TEST_F(SpaceTest, PatternLengthFollowsNicPipeline) {
  const auto& nic = sim::subsystem('F').nicm;
  EXPECT_EQ(space_.pattern_length(),
            nic.processing_units * nic.pipeline_stages);
}

// Property: every random point is a valid workload within bounds.
class RandomPointProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RandomPointProperty, RandomPointsAreValid) {
  SearchSpace space(sim::subsystem('F'));
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Workload w = space.random_point(rng);
    std::string why;
    EXPECT_TRUE(w.valid(&why)) << why << "\n" << w.describe();
    EXPECT_LE(w.num_qps, space.config().max_qps);
    EXPECT_LE(w.total_mrs(), space.config().max_total_mrs);
    EXPECT_LE(w.wqe_batch, w.send_wq_depth);
    EXPECT_EQ(static_cast<int>(w.pattern.size()), space.pattern_length());
  }
}

TEST_P(RandomPointProperty, MutationsStayValidAndChangeOneDimension) {
  SearchSpace space(sim::subsystem('F'));
  Rng rng(GetParam());
  Workload w = space.random_point(rng);
  for (int i = 0; i < 300; ++i) {
    const Workload m = space.mutate(w, rng);
    std::string why;
    ASSERT_TRUE(m.valid(&why)) << why << "\n" << m.describe();
    w = m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPointProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_F(SpaceTest, RandomCoversTransports) {
  Rng rng(42);
  bool saw[3] = {false, false, false};
  bool saw_bidir = false;
  bool saw_loop = false;
  bool saw_gpu = false;
  for (int i = 0; i < 500; ++i) {
    const Workload w = space_.random_point(rng);
    saw[static_cast<int>(w.qp_type)] = true;
    saw_bidir |= w.bidirectional;
    saw_loop |= w.loopback;
    saw_gpu |= (w.local_mem.kind == topo::MemKind::kGpu ||
                w.remote_mem.kind == topo::MemKind::kGpu);
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
  EXPECT_TRUE(saw_bidir);
  EXPECT_TRUE(saw_loop);
  EXPECT_TRUE(saw_gpu);
}

TEST_F(SpaceTest, FixupEnforcesUdMtu) {
  Workload w;
  w.qp_type = QpType::kUD;
  w.opcode = Opcode::kSend;
  w.mtu = 1024;
  w.sge_per_wqe = 2;
  w.pattern = {64 * KiB, 64 * KiB};
  space_.fixup(w);
  std::string why;
  EXPECT_TRUE(w.valid(&why)) << why;
  for (int i = 0; i < w.wqes_per_round(); ++i) {
    EXPECT_LE(w.message_bytes(i), w.mtu);
  }
}

TEST_F(SpaceTest, FixupFixesTransportMismatch) {
  Workload w;
  w.qp_type = QpType::kUD;
  w.opcode = Opcode::kRead;
  w.pattern = {1024};
  space_.fixup(w);
  EXPECT_TRUE(transport_supports(w.qp_type, w.opcode));
}

TEST_F(SpaceTest, RestrictionExcludesFeatures) {
  SpaceConfig cfg;
  cfg.qp_types = {QpType::kRC};
  cfg.allow_loopback = false;
  cfg.allow_gpu = false;
  cfg.max_qps = 512;
  SearchSpace restricted(sim::subsystem('F'), cfg);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    Workload w = restricted.random_point(rng);
    for (int j = 0; j < 5; ++j) w = restricted.mutate(w, rng);
    EXPECT_EQ(w.qp_type, QpType::kRC);
    EXPECT_FALSE(w.loopback);
    EXPECT_LE(w.num_qps, 512);
    EXPECT_NE(w.local_mem.kind, topo::MemKind::kGpu);
    EXPECT_NE(w.remote_mem.kind, topo::MemKind::kGpu);
  }
}

TEST_F(SpaceTest, FeatureValueExtraction) {
  Rng rng(1);
  Workload w = space_.random_point(rng);
  w.num_qps = 320;
  w.bidirectional = true;
  w.qp_type = QpType::kRC;
  EXPECT_EQ(space_.numeric_value(w, Feature::kNumQps), 320);
  EXPECT_EQ(space_.categorical_value(w, Feature::kDirection), 1);
  EXPECT_EQ(space_.categorical_value(w, Feature::kQpType),
            static_cast<int>(QpType::kRC));
}

TEST_F(SpaceTest, WithNumericRescalesPattern) {
  Workload w;
  w.mr_size = 4 * MiB;
  w.pattern = {1 * KiB, 64 * KiB};
  w.sge_per_wqe = 1;
  const Workload scaled =
      space_.with_numeric(w, Feature::kMsgSize, 2.0 * 32.5 * KiB);
  const double avg = analyze_pattern(scaled).avg_msg_bytes;
  EXPECT_NEAR(avg, 65.0 * KiB, 2048);
  // Mix preserved: still one small-ish and one large entry.
  EXPECT_LT(scaled.pattern[0], scaled.pattern[1]);
}

TEST_F(SpaceTest, WithCategoricalPatternMix) {
  Workload w;
  w.mr_size = 4 * MiB;
  w.pattern = {4 * KiB, 4 * KiB, 4 * KiB, 4 * KiB};
  const Workload mixed =
      space_.with_categorical(w, Feature::kPatternMix, 3);
  EXPECT_EQ(space_.categorical_value(mixed, Feature::kPatternMix), 3);
  const Workload small = space_.with_categorical(w, Feature::kPatternMix, 0);
  EXPECT_EQ(space_.categorical_value(small, Feature::kPatternMix), 0);
}

TEST_F(SpaceTest, CategoricalNamesAreHumanReadable) {
  EXPECT_EQ(space_.categorical_name(Feature::kQpType,
                                    static_cast<int>(QpType::kUD)),
            "UD");
  EXPECT_EQ(space_.categorical_name(Feature::kDirection, 1),
            "bidirectional");
  EXPECT_EQ(space_.categorical_name(Feature::kPatternMix, 3),
            "mix small+large");
}

TEST_F(SpaceTest, NumericGridsAreSorted) {
  // CC features expose empty grids on a CC-disarmed space (no probe
  // experiments are ever spent on the inert dimension); everything else
  // must have a sorted, non-empty probe grid.
  for (int fi = 0; fi < kNumFeatures; ++fi) {
    const Feature f = static_cast<Feature>(fi);
    if (is_categorical(f)) continue;
    const auto grid = space_.numeric_grid(f);
    if (f == Feature::kCcRateAi || f == Feature::kCcAlphaG) {
      EXPECT_TRUE(grid.empty()) << to_string(f);
      continue;
    }
    EXPECT_FALSE(grid.empty()) << to_string(f);
    EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end())) << to_string(f);
  }

  // A CC-armed subsystem exposes the CC grids too.
  const SearchSpace armed(
      sim::with_cc(sim::subsystem('F'), nic::cc_scenario("dcqcn")));
  ASSERT_TRUE(armed.cc_searchable());
  for (const Feature f : {Feature::kCcRateAi, Feature::kCcAlphaG}) {
    const auto grid = armed.numeric_grid(f);
    EXPECT_FALSE(grid.empty()) << to_string(f);
    EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end())) << to_string(f);
  }
}

// Heterogeneous pairs: remote buffers live on host B's device set, which
// the catalog hetero scenario makes a GPU-less platform.
TEST_F(SpaceTest, HeterogeneousPairSplitsPlacementLists) {
  const SearchSpace hetero(sim::with_fabric(
      sim::subsystem('F'), net::fabric_scenario("hetero")));
  // Identical pairs share one list.
  EXPECT_EQ(space_.placements().size(), space_.remote_placements().size());
  // The hetero pair does not: host A keeps its GPUs, host B has DRAM only.
  EXPECT_LT(hetero.remote_placements().size(), hetero.placements().size());
  for (const auto& p : hetero.remote_placements()) {
    EXPECT_EQ(p.kind, topo::MemKind::kDram);
  }

  // Sampling and mutation only ever produce remote placements valid on
  // host B.
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    Workload w = hetero.random_point(rng);
    EXPECT_EQ(w.remote_mem.kind, topo::MemKind::kDram) << w.describe();
    w = hetero.mutate(w, rng);
    EXPECT_EQ(w.remote_mem.kind, topo::MemKind::kDram) << w.describe();
  }

  // Feature access indexes the remote list.
  const auto alts = hetero.categorical_alternatives(Feature::kRemoteMem);
  EXPECT_EQ(alts.size(), hetero.remote_placements().size());
  const Workload w = hetero.random_point(rng);
  const Workload forced =
      hetero.with_categorical(w, Feature::kRemoteMem, alts.back());
  EXPECT_EQ(forced.remote_mem, hetero.remote_placements().back());
}

}  // namespace
}  // namespace collie::core
