#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"

namespace collie {
namespace {

std::vector<u64> draw(Rng rng, int n) {
  std::vector<u64> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.next_u64());
  return out;
}

TEST(RngStreamTest, SameSeedSameStreamIndexIdenticalStreams) {
  const Rng a(12345);
  const Rng b(12345);
  for (u64 stream = 0; stream < 8; ++stream) {
    EXPECT_EQ(draw(a.split(stream), 256), draw(b.split(stream), 256))
        << "stream " << stream;
  }
}

TEST(RngStreamTest, DistinctStreamIndicesDoNotOverlap) {
  const Rng root(7);
  constexpr int kStreams = 16;
  constexpr int kDraws = 4096;
  std::set<u64> seen;
  for (u64 stream = 0; stream < kStreams; ++stream) {
    for (const u64 v : draw(root.split(stream), kDraws)) {
      EXPECT_TRUE(seen.insert(v).second)
          << "value repeated across streams (stream " << stream << ")";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kStreams * kDraws));
}

TEST(RngStreamTest, SplitDoesNotAdvanceParent) {
  Rng with_split(99);
  Rng without_split(99);
  (void)with_split.split(0);
  (void)with_split.split(41);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(with_split.next_u64(), without_split.next_u64());
  }
}

TEST(RngStreamTest, SplitIsPureFunctionOfStateAndIndex) {
  // Unlike fork(), the i-th child does not depend on how many other children
  // were split before it.
  const Rng root(2024);
  const auto direct = draw(root.split(5), 128);
  const Rng root2(2024);
  for (u64 s = 0; s < 5; ++s) (void)root2.split(s);
  EXPECT_EQ(draw(root2.split(5), 128), direct);
}

TEST(RngStreamTest, ChildStreamsDifferFromParentStream) {
  const Rng root(31337);
  const auto parent = draw(root, 1024);
  const auto child = draw(root.split(0), 1024);
  EXPECT_NE(parent, child);
}

TEST(RngStreamTest, DifferentSeedsGiveDifferentStreams) {
  EXPECT_NE(draw(Rng(1).split(0), 64), draw(Rng(2).split(0), 64));
}

TEST(RngStreamTest, ForkStillDerivesFreshStreams) {
  Rng root(5);
  Rng a = root.fork();
  Rng b = root.fork();
  EXPECT_NE(draw(a, 64), draw(b, 64));
}

}  // namespace
}  // namespace collie
