#include <gtest/gtest.h>

#include "mem/memory_model.h"

namespace collie::mem {
namespace {

TEST(Memory, DdioHitWhenWorkingSetFits) {
  const MemoryModel m = intel_memory(768ULL * GiB);
  EXPECT_DOUBLE_EQ(m.ddio_miss_fraction(1 * MiB), 0.0);
  EXPECT_DOUBLE_EQ(m.ddio_miss_fraction(static_cast<u64>(m.ddio_slice_bytes)),
                   0.0);
}

TEST(Memory, DdioSpillsGradually) {
  const MemoryModel m = intel_memory(768ULL * GiB);
  const double at_2x = m.ddio_miss_fraction(6 * MiB);
  const double at_10x = m.ddio_miss_fraction(30 * MiB);
  EXPECT_GT(at_2x, 0.3);
  EXPECT_GT(at_10x, at_2x);
  EXPECT_LE(at_10x, 1.0);
}

TEST(Memory, AmdHasNoDdio) {
  const MemoryModel m = amd_memory(2048ULL * GiB);
  EXPECT_DOUBLE_EQ(m.ddio_miss_fraction(1), 1.0);
}

TEST(Memory, DmaWriteLatencyOrdering) {
  const MemoryModel m = intel_memory(768ULL * GiB);
  const topo::MemPlacement dram{topo::MemKind::kDram, 0};
  const topo::MemPlacement gpu{topo::MemKind::kGpu, 0};
  // LLC-resident DMA beats spilled DMA beats GPU memory.
  EXPECT_LT(m.dma_write_latency_ns(dram, 1 * MiB),
            m.dma_write_latency_ns(dram, 100 * MiB));
  EXPECT_LT(m.dma_write_latency_ns(dram, 100 * MiB),
            m.dma_write_latency_ns(gpu, 1 * MiB));
}

TEST(Memory, DeviceBandwidth) {
  const MemoryModel m = intel_memory(768ULL * GiB);
  EXPECT_GT(m.device_bandwidth_bps({topo::MemKind::kGpu, 0}),
            m.device_bandwidth_bps({topo::MemKind::kDram, 0}));
  // DRAM must sustain well above any modeled NIC line rate.
  EXPECT_GT(m.device_bandwidth_bps({topo::MemKind::kDram, 0}), gbps(200));
}

}  // namespace
}  // namespace collie::mem
