// MFS extraction against synthetic anomaly oracles: the probe function is a
// predicate we control, so the necessary-condition logic is tested without
// the simulator in the loop.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mfs.h"
#include "sim/subsystem.h"

namespace collie::core {
namespace {

class MfsTest : public ::testing::Test {
 protected:
  MfsTest() : space_(sim::subsystem('F')) {}

  Workload witness_ud_batch() {
    Workload w;
    w.qp_type = QpType::kUD;
    w.opcode = Opcode::kSend;
    w.num_qps = 4;
    w.mtu = 2048;
    w.pattern = {2048};
    w.send_wq_depth = 256;
    w.recv_wq_depth = 256;
    w.wqe_batch = 64;
    space_.fixup(w);
    return w;
  }

  SearchSpace space_;
};

TEST_F(MfsTest, RecoversCategoricalAndNumericConditions) {
  // Oracle: anomaly iff UD and batch >= 64 (anomaly-#1 shape).
  int probes = 0;
  auto probe = [&](const Workload& w) {
    ++probes;
    return (w.qp_type == QpType::kUD && w.wqe_batch >= 64)
               ? Symptom::kPauseFrames
               : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);
  EXPECT_GT(probes, 5);

  // qp_type must be a condition allowing only UD.
  const FeatureCondition* qp = nullptr;
  const FeatureCondition* batch = nullptr;
  for (const auto& c : mfs.conditions) {
    if (c.feature == Feature::kQpType) qp = &c;
    if (c.feature == Feature::kWqeBatch) batch = &c;
  }
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->allowed,
            std::vector<int>{static_cast<int>(QpType::kUD)});
  ASSERT_NE(batch, nullptr);
  EXPECT_GE(batch->lo, 32.0);  // grid resolution: threshold lands at 64
  EXPECT_LE(batch->lo, 64.0);
  EXPECT_FALSE(std::isfinite(batch->hi));  // no upper necessity
}

TEST_F(MfsTest, UnrelatedFeaturesAreDropped) {
  auto probe = [&](const Workload& w) {
    return w.wqe_batch >= 64 ? Symptom::kPauseFrames : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);
  for (const auto& c : mfs.conditions) {
    EXPECT_NE(c.feature, Feature::kMtu);
    EXPECT_NE(c.feature, Feature::kMrSize);
    EXPECT_NE(c.feature, Feature::kLoopback);
  }
}

TEST_F(MfsTest, MatchesWorkloadsInsideRegion) {
  auto probe = [&](const Workload& w) {
    return (w.qp_type == QpType::kUD && w.wqe_batch >= 64)
               ? Symptom::kPauseFrames
               : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);

  Workload inside = witness_ud_batch();
  inside.num_qps = 8;  // within the local band of the witness (qps 4)
  inside.mtu = 1024;   // untracked features may vary freely
  space_.fixup(inside);
  EXPECT_TRUE(mfs.matches(space_, inside));

  Workload far = witness_ud_batch();
  far.num_qps = 900;  // outside the two-octave locality band
  space_.fixup(far);
  EXPECT_FALSE(mfs.matches(space_, far));

  Workload outside = witness_ud_batch();
  outside.wqe_batch = 8;
  space_.fixup(outside);
  EXPECT_FALSE(mfs.matches(space_, outside));

  Workload rc = witness_ud_batch();
  rc.qp_type = QpType::kRC;
  space_.fixup(rc);
  EXPECT_FALSE(mfs.matches(space_, rc));
}

TEST_F(MfsTest, TwoSidedNumericRange) {
  // Oracle: anomaly only for messages in [2KB, 8KB] (anomaly-#5 shape).
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kSend;
  w.mtu = 1024;
  w.pattern = {4 * KiB};
  w.mr_size = 4 * MiB;
  space_.fixup(w);
  auto probe = [&](const Workload& x) {
    const double avg = analyze_pattern(x).avg_msg_bytes;
    return (avg >= 2 * KiB && avg <= 8 * KiB) ? Symptom::kPauseFrames
                                              : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, w, Symptom::kPauseFrames, probe);
  const FeatureCondition* size = nullptr;
  for (const auto& c : mfs.conditions) {
    if (c.feature == Feature::kMsgSize) size = &c;
  }
  ASSERT_NE(size, nullptr);
  EXPECT_TRUE(std::isfinite(size->lo));
  EXPECT_TRUE(std::isfinite(size->hi));
  EXPECT_GE(size->lo, 512.0);
  EXPECT_LE(size->hi, 64.0 * KiB);
}

TEST_F(MfsTest, DescribeIsHumanReadable) {
  auto probe = [&](const Workload& w) {
    return w.qp_type == QpType::kUD ? Symptom::kPauseFrames
                                    : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);
  const std::string text = mfs.describe(space_);
  EXPECT_NE(text.find("qp_type"), std::string::npos);
  EXPECT_NE(text.find("UD"), std::string::npos);
}

TEST_F(MfsTest, EmptyConditionsNeverMatch) {
  Mfs empty;
  EXPECT_FALSE(empty.matches(space_, witness_ud_batch()));
}

TEST_F(MfsTest, ConditionContains) {
  FeatureCondition c;
  c.feature = Feature::kNumQps;
  c.categorical = false;
  c.lo = 100;
  c.hi = std::numeric_limits<double>::infinity();
  Workload w = witness_ud_batch();
  w.num_qps = 500;
  EXPECT_TRUE(c.contains(space_, w));
  w.num_qps = 50;
  EXPECT_FALSE(c.contains(space_, w));
}

}  // namespace
}  // namespace collie::core
