// MFS extraction against synthetic anomaly oracles: the probe function is a
// predicate we control, so the necessary-condition logic is tested without
// the simulator in the loop.
#include <gtest/gtest.h>

#include <cmath>

#include "core/mfs.h"
#include "core/mfs_index.h"
#include "core/mfs_store.h"
#include "sim/subsystem.h"

namespace collie::core {
namespace {

class MfsTest : public ::testing::Test {
 protected:
  MfsTest() : space_(sim::subsystem('F')) {}

  Workload witness_ud_batch() {
    Workload w;
    w.qp_type = QpType::kUD;
    w.opcode = Opcode::kSend;
    w.num_qps = 4;
    w.mtu = 2048;
    w.pattern = {2048};
    w.send_wq_depth = 256;
    w.recv_wq_depth = 256;
    w.wqe_batch = 64;
    space_.fixup(w);
    return w;
  }

  SearchSpace space_;
};

TEST_F(MfsTest, RecoversCategoricalAndNumericConditions) {
  // Oracle: anomaly iff UD and batch >= 64 (anomaly-#1 shape).
  int probes = 0;
  auto probe = [&](const Workload& w) {
    ++probes;
    return (w.qp_type == QpType::kUD && w.wqe_batch >= 64)
               ? Symptom::kPauseFrames
               : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);
  EXPECT_GT(probes, 5);

  // qp_type must be a condition allowing only UD.
  const FeatureCondition* qp = nullptr;
  const FeatureCondition* batch = nullptr;
  for (const auto& c : mfs.conditions) {
    if (c.feature == Feature::kQpType) qp = &c;
    if (c.feature == Feature::kWqeBatch) batch = &c;
  }
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->allowed,
            std::vector<int>{static_cast<int>(QpType::kUD)});
  ASSERT_NE(batch, nullptr);
  EXPECT_GE(batch->lo, 32.0);  // grid resolution: threshold lands at 64
  EXPECT_LE(batch->lo, 64.0);
  EXPECT_FALSE(std::isfinite(batch->hi));  // no upper necessity
}

TEST_F(MfsTest, UnrelatedFeaturesAreDropped) {
  auto probe = [&](const Workload& w) {
    return w.wqe_batch >= 64 ? Symptom::kPauseFrames : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);
  for (const auto& c : mfs.conditions) {
    EXPECT_NE(c.feature, Feature::kMtu);
    EXPECT_NE(c.feature, Feature::kMrSize);
    EXPECT_NE(c.feature, Feature::kLoopback);
  }
}

TEST_F(MfsTest, MatchesWorkloadsInsideRegion) {
  auto probe = [&](const Workload& w) {
    return (w.qp_type == QpType::kUD && w.wqe_batch >= 64)
               ? Symptom::kPauseFrames
               : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);

  Workload inside = witness_ud_batch();
  inside.num_qps = 8;  // within the local band of the witness (qps 4)
  inside.mtu = 1024;   // untracked features may vary freely
  space_.fixup(inside);
  EXPECT_TRUE(mfs.matches(space_, inside));

  Workload far = witness_ud_batch();
  far.num_qps = 900;  // outside the two-octave locality band
  space_.fixup(far);
  EXPECT_FALSE(mfs.matches(space_, far));

  Workload outside = witness_ud_batch();
  outside.wqe_batch = 8;
  space_.fixup(outside);
  EXPECT_FALSE(mfs.matches(space_, outside));

  Workload rc = witness_ud_batch();
  rc.qp_type = QpType::kRC;
  space_.fixup(rc);
  EXPECT_FALSE(mfs.matches(space_, rc));
}

TEST_F(MfsTest, TwoSidedNumericRange) {
  // Oracle: anomaly only for messages in [2KB, 8KB] (anomaly-#5 shape).
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kSend;
  w.mtu = 1024;
  w.pattern = {4 * KiB};
  w.mr_size = 4 * MiB;
  space_.fixup(w);
  auto probe = [&](const Workload& x) {
    const double avg = analyze_pattern(x).avg_msg_bytes;
    return (avg >= 2 * KiB && avg <= 8 * KiB) ? Symptom::kPauseFrames
                                              : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, w, Symptom::kPauseFrames, probe);
  const FeatureCondition* size = nullptr;
  for (const auto& c : mfs.conditions) {
    if (c.feature == Feature::kMsgSize) size = &c;
  }
  ASSERT_NE(size, nullptr);
  EXPECT_TRUE(std::isfinite(size->lo));
  EXPECT_TRUE(std::isfinite(size->hi));
  EXPECT_GE(size->lo, 512.0);
  EXPECT_LE(size->hi, 64.0 * KiB);
}

TEST_F(MfsTest, DescribeIsHumanReadable) {
  auto probe = [&](const Workload& w) {
    return w.qp_type == QpType::kUD ? Symptom::kPauseFrames
                                    : Symptom::kNone;
  };
  const Mfs mfs = construct_mfs(space_, witness_ud_batch(),
                                Symptom::kPauseFrames, probe);
  const std::string text = mfs.describe(space_);
  EXPECT_NE(text.find("qp_type"), std::string::npos);
  EXPECT_NE(text.find("UD"), std::string::npos);
}

TEST_F(MfsTest, EmptyConditionsNeverMatch) {
  Mfs empty;
  EXPECT_FALSE(empty.matches(space_, witness_ud_batch()));
}

TEST_F(MfsTest, ConditionContains) {
  FeatureCondition c;
  c.feature = Feature::kNumQps;
  c.categorical = false;
  c.lo = 100;
  c.hi = std::numeric_limits<double>::infinity();
  Workload w = witness_ud_batch();
  w.num_qps = 500;
  EXPECT_TRUE(c.contains(space_, w));
  w.num_qps = 50;
  EXPECT_FALSE(c.contains(space_, w));
}

// ---- MatchMFS index equivalence -------------------------------------------
//
// The per-feature index must answer exactly like the linear scan, entry
// position included (first-cover semantics drive hit provenance in the
// concurrent pool).  Fuzz adversarial condition sets: empty allowed lists,
// one-sided and infinite ranges, duplicate conditions on one feature,
// condition-free entries, and tolerance-boundary values.

Mfs fuzz_mfs(const SearchSpace& space, Rng& rng) {
  Mfs m;
  m.symptom = rng.bernoulli(0.5) ? Symptom::kPauseFrames
                                 : Symptom::kLowThroughput;
  m.witness = space.random_point(rng);
  const int n_conditions = static_cast<int>(rng.uniform_int(0, 6));
  for (int ci = 0; ci < n_conditions; ++ci) {
    const Feature f =
        static_cast<Feature>(rng.uniform_int(0, kNumFeatures - 1));
    FeatureCondition c;
    c.feature = f;
    c.categorical = is_categorical(f);
    if (c.categorical) {
      const auto alts = space.categorical_alternatives(f);
      for (const int a : alts) {
        if (rng.bernoulli(0.5)) c.allowed.push_back(a);
      }
      // Occasionally empty (matches nothing) or with duplicates.
      if (!c.allowed.empty() && rng.bernoulli(0.3)) {
        c.allowed.push_back(c.allowed.front());
      }
    } else {
      const double v = std::max(1.0, space.numeric_value(m.witness, f));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          c.lo = v / 4.0;
          c.hi = v * 4.0;
          break;
        case 1:  // one-sided
          c.lo = v;
          break;
        case 2:
          c.hi = v;
          break;
        default:  // exact point (tolerance boundary)
          c.lo = v;
          c.hi = v;
          break;
      }
    }
    m.conditions.push_back(std::move(c));
  }
  return m;
}

int linear_first_match(const std::vector<Mfs>& set, const SearchSpace& space,
                       const Workload& w) {
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].matches(space, w)) return static_cast<int>(i);
  }
  return -1;
}

TEST_F(MfsTest, IndexMatchesLinearScanOnFuzzedSets) {
  for (const u64 seed : {u64{1}, u64{2}, u64{3}, u64{4}}) {
    Rng rng(seed);
    MfsIndex index;
    std::vector<Mfs> set;
    LocalMfsStore store;
    for (int round = 0; round < 40; ++round) {
      // Interleave inserts with queries so every intermediate index state
      // is exercised, not just the final one.
      Mfs m = fuzz_mfs(space_, rng);
      index.add(m);
      store.insert(space_, m);
      set.push_back(std::move(m));
      for (int q = 0; q < 25; ++q) {
        Workload w = rng.bernoulli(0.5)
                         ? space_.random_point(rng)
                         : space_.mutate(set.back().witness, rng);
        const int expect = linear_first_match(set, space_, w);
        EXPECT_EQ(index.first_match(space_, w), expect)
            << "seed " << seed << " round " << round;
        EXPECT_EQ(store.covers(space_, w), expect >= 0);
      }
      // Probe the witnesses themselves: dense hit coverage.
      for (const Mfs& m2 : set) {
        const int expect = linear_first_match(set, space_, m2.witness);
        EXPECT_EQ(index.first_match(space_, m2.witness), expect);
      }
    }
  }
}

TEST_F(MfsTest, IndexHonoursToleranceBoundsExactly) {
  // contains() accepts v within [lo - 1e-9, hi + 1e-9]; the index
  // precomputes those exact bounds.  Probe just inside and outside.
  Mfs m;
  m.symptom = Symptom::kPauseFrames;
  m.witness = witness_ud_batch();
  FeatureCondition c;
  c.feature = Feature::kNumQps;
  c.categorical = false;
  c.lo = 100.0;
  c.hi = 200.0;
  m.conditions.push_back(c);
  MfsIndex index;
  index.add(m);
  std::vector<Mfs> set{m};
  Workload w = witness_ud_batch();
  for (const int qps : {99, 100, 101, 150, 199, 200, 201}) {
    w.num_qps = qps;
    EXPECT_EQ(index.first_match(space_, w),
              linear_first_match(set, space_, w))
        << qps;
  }
}

TEST_F(MfsTest, IndexFilterRestrictsToFlaggedEntries) {
  Rng rng(9);
  MfsIndex index;
  std::vector<Mfs> set;
  std::vector<u64> filter;
  for (int i = 0; i < 30; ++i) {
    Mfs m = fuzz_mfs(space_, rng);
    index.add(m);
    if (i % 3 == 0) MfsIndex::set_bit(filter, static_cast<std::size_t>(i));
    set.push_back(std::move(m));
  }
  for (int q = 0; q < 200; ++q) {
    const Workload w = space_.random_point(rng);
    int expect = -1;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (i % 3 == 0 && set[i].matches(space_, w)) {
        expect = static_cast<int>(i);
        break;
      }
    }
    EXPECT_EQ(index.first_match(space_, w, filter), expect);
  }
}

TEST_F(MfsTest, IndexConjoinsDuplicateFeatureConditions) {
  // Two conditions on the same feature must intersect, exactly like the
  // linear conjunction over the condition list.
  Mfs m;
  m.symptom = Symptom::kPauseFrames;
  m.witness = witness_ud_batch();
  FeatureCondition a;
  a.feature = Feature::kWqeBatch;
  a.categorical = false;
  a.lo = 8.0;
  a.hi = 64.0;
  FeatureCondition b = a;
  b.lo = 32.0;
  b.hi = 128.0;
  m.conditions = {a, b};
  MfsIndex index;
  index.add(m);
  std::vector<Mfs> set{m};
  Workload w = witness_ud_batch();
  for (const int batch : {4, 8, 16, 32, 48, 64, 100, 128}) {
    w.wqe_batch = batch;
    EXPECT_EQ(index.first_match(space_, w),
              linear_first_match(set, space_, w))
        << batch;
  }

  // Categorical intersection: {UD} after {RC, UD} leaves only UD.
  Mfs cm;
  cm.symptom = Symptom::kPauseFrames;
  cm.witness = witness_ud_batch();
  FeatureCondition c1;
  c1.feature = Feature::kQpType;
  c1.categorical = true;
  c1.allowed = {static_cast<int>(QpType::kRC), static_cast<int>(QpType::kUD)};
  FeatureCondition c2 = c1;
  c2.allowed = {static_cast<int>(QpType::kUD)};
  cm.conditions = {c1, c2};
  MfsIndex cidx;
  cidx.add(cm);
  std::vector<Mfs> cset{cm};
  Workload cw = witness_ud_batch();
  for (const QpType t : {QpType::kRC, QpType::kUC, QpType::kUD}) {
    cw.qp_type = t;
    EXPECT_EQ(cidx.first_match(space_, cw),
              linear_first_match(cset, space_, cw));
  }
}

}  // namespace
}  // namespace collie::core
