// Cross-cutting properties of the performance model's resource solver,
// checked over randomized workloads and all eight subsystems:
//   * conservation — delivered goodput never exceeds the wire/line budget;
//   * monotonicity — growing a working set never *raises* throughput;
//   * generation consistency — the 100G CX-6 subsystem (D) is a behavioural
//     subset of the stressed 200G one (F), as the paper reports.
#include <gtest/gtest.h>

#include "catalog/anomalies.h"
#include "sim/perf_model.h"
#include "sim/subsystem.h"

namespace collie::sim {
namespace {

class SolverPropertyTest : public ::testing::TestWithParam<char> {};

TEST_P(SolverPropertyTest, DeliveredNeverExceedsLineRate) {
  const Subsystem& sys = subsystem(GetParam());
  Rng rng(static_cast<u64>(GetParam()));
  for (int i = 0; i < 30; ++i) {
    Workload w;
    w.qp_type = QpType::kRC;
    w.opcode = rng.bernoulli(0.5) ? Opcode::kWrite : Opcode::kSend;
    w.num_qps = static_cast<int>(rng.log_uniform_int(1, 4000));
    w.wqe_batch = 1 << rng.uniform_int(0, 6);
    w.send_wq_depth = std::max(w.wqe_batch, 128);
    w.recv_wq_depth = 16 << rng.uniform_int(0, 6);
    w.mr_size = 1 * MiB;
    w.mtu = 1024u << rng.uniform_int(0, 2);
    w.pattern.assign(4, 1ull << rng.uniform_int(8, 18));
    w.bidirectional = rng.bernoulli(0.5);
    ASSERT_TRUE(w.valid());
    const SimResult r = evaluate(sys, w, rng);
    // Goodput can never exceed the line rate (and leaves header room).
    EXPECT_LE(r.rx_goodput_bps, sys.nicm.line_rate_bps * 1.001)
        << w.describe();
    EXPECT_LE(r.tx_goodput_bps, sys.nicm.line_rate_bps * 1.001);
    // Wire utilization accounts for overhead, so goodput < wire cap.
    EXPECT_LE(r.tx_wire_bps, sys.nicm.line_rate_bps * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubsystems, SolverPropertyTest,
                         ::testing::Values('A', 'B', 'C', 'D', 'E', 'F',
                                           'G', 'H'));

TEST(SolverProperty, ThroughputMonotoneInQpcPressure) {
  // Adding connections to a small-message workload never increases
  // delivered throughput (the ICM working set only grows).
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.wqe_batch = 1;
  w.send_wq_depth = 16;
  w.recv_wq_depth = 16;
  w.mr_size = 64 * KiB;
  w.mtu = 1024;
  w.pattern = {512};
  double prev = 1e18;
  for (int qps : {8, 64, 256, 480, 1024, 4096}) {
    w.num_qps = qps;
    Rng rng(3);
    const SimResult r = evaluate(subsystem('F'), w, rng);
    EXPECT_LE(r.rx_goodput_bps, prev * 1.05) << qps;
    prev = r.rx_goodput_bps;
  }
}

TEST(SolverProperty, ThroughputMonotoneInMttPressure) {
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 24;
  w.wqe_batch = 1;
  w.mr_size = 64 * KiB;
  w.mtu = 1024;
  w.pattern = {512};
  double prev = 1e18;
  for (int mrs : {1, 16, 128, 512, 1024}) {
    w.mrs_per_qp = mrs;
    Rng rng(3);
    const SimResult r = evaluate(subsystem('F'), w, rng);
    EXPECT_LE(r.rx_goodput_bps, prev * 1.05) << mrs;
    prev = r.rx_goodput_bps;
  }
}

TEST(SolverProperty, HundredGigCx6IsSubsetOfTwoHundred) {
  // Every CX-6 concrete trigger that stays clean on F must stay clean on D
  // (the 100G part has strictly more headroom); the converse need not hold
  // — the paper's ML workload regressed only at 200G.
  int f_anomalous = 0;
  int d_anomalous = 0;
  for (const auto& a : catalog::all_anomalies()) {
    if (a.chip != "CX-6") continue;
    if (a.concrete.local_mem.kind == topo::MemKind::kGpu ||
        a.concrete.remote_mem.kind == topo::MemKind::kGpu) {
      continue;  // D has no GPUs; placement invalid there
    }
    Workload w = a.concrete;
    // D is a 2-socket host without quirked cross-socket paths.
    Rng rng(9);
    const SimResult rf = evaluate(subsystem('F'), w, rng);
    const SimResult rd = evaluate(subsystem('D'), w, rng);
    auto anomalous = [](const SimResult& r) {
      return r.pause_duration_ratio > 0.001 ||
             (r.wire_utilization < 0.8 && r.pps_utilization < 0.8);
    };
    if (anomalous(rf)) ++f_anomalous;
    if (anomalous(rd)) ++d_anomalous;
  }
  EXPECT_GE(f_anomalous, d_anomalous);
  EXPECT_GT(f_anomalous, 0);
}

TEST(SolverProperty, BidirectionalNeverBeatsSumOfUnidirectional) {
  // Per-direction goodput under bidirectional load cannot exceed the
  // unidirectional goodput of the same workload.
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    Workload w;
    w.qp_type = QpType::kRC;
    w.opcode = Opcode::kWrite;
    w.num_qps = static_cast<int>(rng.log_uniform_int(1, 512));
    w.wqe_batch = 1 << rng.uniform_int(0, 5);
    w.send_wq_depth = std::max(w.wqe_batch, 128);
    w.mr_size = 1 * MiB;
    w.mtu = 4096;
    w.pattern = {1ull << rng.uniform_int(10, 18)};
    Workload uni = w;
    uni.bidirectional = false;
    Workload bi = w;
    bi.bidirectional = true;
    Rng r1(42);
    Rng r2(42);
    const double g_uni =
        evaluate(subsystem('F'), uni, r1).tx_goodput_bps;
    const double g_bi = evaluate(subsystem('F'), bi, r2).tx_goodput_bps;
    EXPECT_LE(g_bi, g_uni * 1.01) << w.describe();
  }
}

TEST(SolverProperty, LowerMtuNeverHelpsOnCx6) {
  // On the CX-6 subsystems, shrinking the MTU never improves a fixed
  // workload (the P2100G's #14 inversion is the quirky exception, on H).
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 8;
  w.wqe_batch = 8;
  w.mr_size = 1 * MiB;
  w.pattern = {64 * KiB};
  double prev = 0.0;
  for (u32 mtu : {256u, 512u, 1024u, 2048u, 4096u}) {
    w.mtu = mtu;
    Rng rng(13);
    const double g = evaluate(subsystem('F'), w, rng).rx_goodput_bps;
    EXPECT_GE(g, prev * 0.99) << mtu;
    prev = g;
  }
}

}  // namespace
}  // namespace collie::sim
