#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "catalog/anomalies.h"
#include "core/search.h"
#include "obs/telemetry.h"
#include "orchestrator/campaign.h"
#include "orchestrator/campaign_report.h"
#include "orchestrator/checkpoint.h"
#include "orchestrator/journal.h"
#include "orchestrator/mfs_pool.h"
#include "orchestrator/scheduler.h"
#include "sim/subsystem.h"

namespace collie::orchestrator {
namespace {

workload::EngineOptions fast_engine_opts() {
  workload::EngineOptions opts;
  opts.run_functional_pass = false;  // keep orchestration tests quick
  return opts;
}

// An MFS whose single unconstrained numeric condition covers every workload.
core::Mfs cover_all_mfs(core::Symptom symptom) {
  core::Mfs mfs;
  mfs.symptom = symptom;
  core::FeatureCondition cond;
  cond.feature = core::Feature::kNumQps;
  cond.categorical = false;
  mfs.conditions.push_back(cond);
  return mfs;
}

// ---- ConcurrentMfsPool ------------------------------------------------------

TEST(ConcurrentMfsPoolTest, CoversOnlyWithinScope) {
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(1);
  const Workload w = space.random_point(rng);

  ConcurrentMfsPool pool;
  EXPECT_FALSE(pool.covers("F", space, w, 0, nullptr));
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 0);
  EXPECT_TRUE(pool.covers("F", space, w, 0, nullptr));
  EXPECT_FALSE(pool.covers("B", space, w, 0, nullptr));
  EXPECT_EQ(pool.size("F"), 1u);
  EXPECT_EQ(pool.size("B"), 0u);
}

TEST(ConcurrentMfsPoolTest, AttributesCrossWorkerHits) {
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(2);
  const Workload w = space.random_point(rng);

  ConcurrentMfsPool pool;
  ConcurrentMfsPool::View inserter = pool.view("F", /*worker=*/0);
  ConcurrentMfsPool::View same_worker = pool.view("F", /*worker=*/0);
  ConcurrentMfsPool::View other_worker = pool.view("F", /*worker=*/1);

  inserter.insert(space, cover_all_mfs(core::Symptom::kLowThroughput));
  EXPECT_TRUE(same_worker.covers(space, w));
  EXPECT_EQ(same_worker.cross_worker_hits(), 0);
  EXPECT_TRUE(other_worker.covers(space, w));
  EXPECT_EQ(other_worker.cross_worker_hits(), 1);

  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.cross_worker_hits, 1);
}

TEST(ConcurrentMfsPoolTest, CountsDuplicateInserts) {
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(3);

  ConcurrentMfsPool pool;
  core::Mfs a = cover_all_mfs(core::Symptom::kPauseFrames);
  a.witness = space.random_point(rng);
  core::Mfs b = cover_all_mfs(core::Symptom::kPauseFrames);
  b.witness = space.random_point(rng);

  EXPECT_EQ(pool.insert("F", space, a, 0), 0);
  EXPECT_EQ(pool.insert("F", space, b, 1), 1);  // a already covers b's witness
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.duplicate_inserts, 1);
}

TEST(ConcurrentMfsPoolTest, FirstCoverProvenanceMatchesInsertionOrder) {
  // Two overlapping regions from different workers: a hit must attribute to
  // the FIRST inserted entry (the linear scan's answer), not just any
  // matching one — the index returns the lowest insertion position.
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(5);
  const Workload w = space.random_point(rng);

  ConcurrentMfsPool pool;
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames),
              /*origin_worker=*/3);
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames),
              /*origin_worker=*/9);
  bool cross = false;
  // Requester 3 matches its own (first) entry: not a cross-worker hit even
  // though worker 9's overlapping entry would be one.
  EXPECT_TRUE(pool.covers("F", space, w, /*requester=*/3, &cross));
  EXPECT_FALSE(cross);
  EXPECT_TRUE(pool.covers("F", space, w, /*requester=*/9, &cross));
  EXPECT_TRUE(cross);
}

TEST(ConcurrentMfsPoolTest, EpochAdvancesOnEveryPublication) {
  const core::SearchSpace space(sim::subsystem('F'));
  ConcurrentMfsPool pool;
  EXPECT_EQ(pool.epoch("F"), 0u);
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 0);
  EXPECT_EQ(pool.epoch("F"), 1u);
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 0);
  EXPECT_EQ(pool.epoch("F"), 2u);
  EXPECT_EQ(pool.epoch("B"), 0u);  // scopes version independently
}

TEST(ConcurrentMfsPoolTest, RacingInsertsNeverCorruptCoversAnswers) {
  // Readers hammer covers()/covers_preloaded() on published snapshots while
  // writers insert into the same scope.  Any interleaving is allowed to
  // under-skip (a reader may hold yesterday's snapshot), but an answer of
  // "covered" must always be justified by the final entry set, and once the
  // writers are done every answer must equal the linear scan.  The TSan CI
  // job runs this against the lock-free publication path.
  const sim::Subsystem& sys = sim::subsystem('F');
  const core::SearchSpace space(sys);
  ConcurrentMfsPool pool;
  // Pre-load a warm region so covers_preloaded() has racing company too.
  {
    Rng rng(41);
    core::Mfs warm = cover_all_mfs(core::Symptom::kPauseFrames);
    warm.witness = space.random_point(rng);
    warm.conditions.clear();
    core::FeatureCondition c;
    c.feature = core::Feature::kNumQps;
    c.categorical = false;
    c.lo = 1.0;
    c.hi = 64.0;
    warm.conditions.push_back(c);
    pool.load_scope("F", {warm});
  }

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kInsertsPerWriter = 24;
  std::atomic<bool> stop{false};
  std::atomic<long> covered_answers{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<u64>(t));
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        core::Mfs m;
        m.symptom = core::Symptom::kLowThroughput;
        m.witness = space.random_point(rng);
        core::FeatureCondition c;
        c.feature = core::Feature::kNumQps;
        c.categorical = false;
        const double v =
            std::max(1.0, space.numeric_value(m.witness,
                                              core::Feature::kNumQps));
        c.lo = v / 2.0;
        c.hi = v * 2.0;
        m.conditions.push_back(c);
        pool.insert("F", space, std::move(m), t);
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(200 + static_cast<u64>(t));
      ConcurrentMfsPool::View view = pool.view("F", kWriters + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Workload w = space.random_point(rng);
        if (view.covers(space, w)) {
          covered_answers.fetch_add(1, std::memory_order_relaxed);
        }
        (void)view.covers_preloaded(space, w);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  for (int t = kWriters; t < kWriters + kReaders; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }

  // Final state: indexed answers equal the linear scan, entry for entry.
  const std::vector<core::Mfs> all = pool.snapshot("F");
  ASSERT_EQ(all.size(), 1u + kWriters * kInsertsPerWriter);
  EXPECT_EQ(pool.epoch("F"), 1u + kWriters * kInsertsPerWriter);
  Rng rng(300);
  for (int q = 0; q < 400; ++q) {
    const Workload w = q % 3 == 0
                           ? all[static_cast<std::size_t>(q) % all.size()]
                                 .witness
                           : space.random_point(rng);
    bool linear = false;
    for (const core::Mfs& m : all) {
      if (m.matches(space, w)) {
        linear = true;
        break;
      }
    }
    bool warm_linear = all[0].matches(space, w);
    EXPECT_EQ(pool.covers("F", space, w, /*requester=*/99, nullptr), linear);
    EXPECT_EQ(pool.covers_preloaded("F", space, w), warm_linear);
  }
}

TEST(ConcurrentMfsPoolTest, SnapshotPreservesInsertionOrder) {
  const core::SearchSpace space(sim::subsystem('F'));
  ConcurrentMfsPool pool;
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 0);
  pool.insert("F", space, cover_all_mfs(core::Symptom::kLowThroughput), 1);
  const auto snap = pool.snapshot("F");
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].index, 0);
  EXPECT_EQ(snap[0].symptom, core::Symptom::kPauseFrames);
  EXPECT_EQ(snap[1].index, 1);
  EXPECT_EQ(snap[1].symptom, core::Symptom::kLowThroughput);
}

// ---- Snapshot reclamation (keep_epochs) -------------------------------------

// With no concurrent readers, every write reclaims down to the policy bound:
// retained superseded snapshots never exceed keep_epochs, and keep_epochs=0
// frees every superseded snapshot immediately.  Before reclamation existed,
// retained_snapshots grew one-per-insert without bound.
TEST(ConcurrentMfsPoolTest, RetainedSnapshotsAreBoundedByKeepEpochs) {
  const core::SearchSpace space(sim::subsystem('F'));
  for (const int keep : {0, 3}) {
    MfsPoolOptions opts;
    opts.keep_epochs = keep;
    ConcurrentMfsPool pool(opts);
    EXPECT_EQ(pool.options().keep_epochs, keep);
    Rng rng(61);
    for (int i = 0; i < 20; ++i) {
      core::Mfs m = cover_all_mfs(core::Symptom::kLowThroughput);
      m.witness = space.random_point(rng);
      pool.insert("F", space, std::move(m), 0);
      EXPECT_LE(pool.retained_snapshots(), keep) << "insert " << i;
      EXPECT_LE(pool.retained_snapshots("F"), keep) << "insert " << i;
    }
    // The window fills and stays full — reclamation never eats the
    // published snapshot or rewinds the epoch counter.
    EXPECT_EQ(pool.retained_snapshots(), std::min(keep, 19));
    EXPECT_EQ(pool.epoch("F"), 20u);
    EXPECT_EQ(pool.size("F"), 20u);
    // Retention is a memory policy, not a semantic one: answers equal the
    // linear scan regardless of keep_epochs.
    const std::vector<core::Mfs> all = pool.snapshot("F");
    for (int q = 0; q < 100; ++q) {
      const Workload w = space.random_point(rng);
      bool linear = false;
      for (const core::Mfs& m : all) {
        if (m.matches(space, w)) {
          linear = true;
          break;
        }
      }
      EXPECT_EQ(pool.covers("F", space, w, 0, nullptr), linear);
    }
  }
}

// A quiescent view holds no hazard: snapshots superseded while its slot is
// empty are reclaimed even though the view is still alive, and the view's
// next read sees the freshly published snapshot.
TEST(ConcurrentMfsPoolTest, QuiescentViewsDoNotPinSnapshots) {
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(67);
  MfsPoolOptions opts;
  opts.keep_epochs = 0;
  ConcurrentMfsPool pool(opts);
  ConcurrentMfsPool::View view = pool.view("F", /*worker=*/1);
  const Workload w = space.random_point(rng);
  EXPECT_FALSE(view.covers(space, w));  // binds the slot, then quiesces
  for (int i = 0; i < 8; ++i) {
    pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 0);
    EXPECT_EQ(pool.retained_snapshots(), 0) << "insert " << i;
  }
  EXPECT_TRUE(view.covers(space, w));
  EXPECT_EQ(view.size(), 8u);
}

// The tentpole acceptance: retained_snapshots stays bounded while readers
// race writers.  Readers protect at most one snapshot each (their hazard
// slot), so at any instant retention is at most keep_epochs + live readers —
// and once the readers quiesce, one more write drains the stragglers back to
// the policy bound.  The TSan CI job runs this against the hazard-slot
// protocol (announce / validate / publish / scan are all seq_cst).
TEST(ConcurrentMfsPoolTest, RacingInsertsKeepRetentionBounded) {
  const core::SearchSpace space(sim::subsystem('F'));
  constexpr int kKeepEpochs = 2;
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kInsertsPerWriter = 32;
  MfsPoolOptions opts;
  opts.keep_epochs = kKeepEpochs;
  ConcurrentMfsPool pool(opts);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(400 + static_cast<u64>(t));
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        core::Mfs m = cover_all_mfs(core::Symptom::kLowThroughput);
        m.witness = space.random_point(rng);
        pool.insert("F", space, std::move(m), t);
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + static_cast<u64>(t));
      ConcurrentMfsPool::View view = pool.view("F", kWriters + t);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)view.covers(space, space.random_point(rng));
      }
    });
  }
  // Poll the gauge while the race runs: never above policy + reader count.
  for (int probe = 0; probe < 200; ++probe) {
    EXPECT_LE(pool.retained_snapshots(), kKeepEpochs + kReaders);
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<std::size_t>(t)].join();
  stop.store(true, std::memory_order_relaxed);
  for (int t = kWriters; t < kWriters + kReaders; ++t) {
    threads[static_cast<std::size_t>(t)].join();
  }

  EXPECT_LE(pool.retained_snapshots(), kKeepEpochs + kReaders);
  // Readers are gone; the next write re-examines the grace-period
  // stragglers and retention returns to the policy bound exactly.
  pool.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 0);
  EXPECT_EQ(pool.retained_snapshots(), kKeepEpochs);
  EXPECT_EQ(pool.size("F"), 1u + kWriters * kInsertsPerWriter);
  EXPECT_EQ(pool.epoch("F"), 1u + kWriters * kInsertsPerWriter);
}

// ---- MFS-overlap criterion --------------------------------------------------

// An MFS pinning num_qps to [lo, hi]; witnesses fall at the low edge.
core::Mfs qps_range_mfs(core::Symptom symptom, const core::SearchSpace& space,
                        double lo, double hi) {
  core::Mfs mfs;
  mfs.symptom = symptom;
  core::FeatureCondition cond;
  cond.feature = core::Feature::kNumQps;
  cond.categorical = false;
  cond.lo = lo;
  cond.hi = hi;
  mfs.conditions.push_back(cond);
  Rng rng(5);
  mfs.witness = space.random_point(rng);
  mfs.witness.num_qps = static_cast<int>(lo);
  space.fixup(mfs.witness);
  return mfs;
}

// The pool's duplicate-insert accounting and the campaign report's dedup
// must agree on what "the same anomaly region" means — both delegate to
// core::same_anomaly_region, and this pins them to identical verdicts on
// shared fixtures.
TEST(MfsOverlapCriterion, PoolAndReportAgree) {
  const core::SearchSpace space(sim::subsystem('F'));
  using core::Symptom;

  struct Fixture {
    core::Mfs a;
    core::Mfs b;
    bool overlap;
  };
  std::vector<Fixture> fixtures;
  // Overlapping ranges with witnesses inside each other's region.
  fixtures.push_back({qps_range_mfs(Symptom::kPauseFrames, space, 8, 128),
                      qps_range_mfs(Symptom::kPauseFrames, space, 8, 64),
                      true});
  // Disjoint ranges.
  fixtures.push_back({qps_range_mfs(Symptom::kPauseFrames, space, 8, 64),
                      qps_range_mfs(Symptom::kPauseFrames, space, 512, 1024),
                      false});
  // Same region, different symptom: never the same anomaly.
  fixtures.push_back({qps_range_mfs(Symptom::kPauseFrames, space, 8, 128),
                      qps_range_mfs(Symptom::kLowThroughput, space, 8, 64),
                      false});

  for (std::size_t fi = 0; fi < fixtures.size(); ++fi) {
    const Fixture& fx = fixtures[fi];
    EXPECT_EQ(core::same_anomaly_region(space, fx.a, fx.b), fx.overlap)
        << "fixture " << fi;

    // Pool path: the second insert counts a duplicate iff the regions
    // overlap.
    ConcurrentMfsPool pool;
    pool.insert("F", space, fx.a, 0);
    pool.insert("F", space, fx.b, 1);
    EXPECT_EQ(pool.stats().duplicate_inserts, fx.overlap ? 1 : 0)
        << "fixture " << fi;

    // Report path: two single-discovery cells collapse iff the regions
    // overlap.
    CampaignResult result;
    for (const core::Mfs* mfs : {&fx.a, &fx.b}) {
      CellResult cr;
      cr.cell.subsystem = 'F';
      cr.worker = 0;
      core::FoundAnomaly found;
      found.mfs = *mfs;
      cr.result.found.push_back(std::move(found));
      result.cells.push_back(std::move(cr));
    }
    const CampaignReport report = build_report(result);
    EXPECT_EQ(report.anomalies.size(), fx.overlap ? 1u : 2u)
        << "fixture " << fi;
  }
}

// ---- Engine const-safety ----------------------------------------------------

TEST(ParallelEvaluationTest, SharedEngineGivesIdenticalResultsAcrossThreads) {
  const sim::Subsystem& sys = sim::subsystem('F');
  const workload::Engine engine(sys, fast_engine_opts());
  const core::SearchSpace space(sys);

  const Rng root(11);
  constexpr int kWorkloads = 24;
  std::vector<Workload> workloads;
  {
    Rng sampler = root.split(0);
    for (int i = 0; i < kWorkloads; ++i) {
      workloads.push_back(space.random_point(sampler));
    }
  }

  auto evaluate_all = [&](std::vector<workload::Measurement>& out) {
    out.resize(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      Rng rng = root.split(1 + i);  // per-workload stream
      out[i] = engine.run(workloads[i], rng);
    }
  };

  std::vector<workload::Measurement> serial;
  evaluate_all(serial);

  // Two threads evaluating the same sequence against the shared const
  // engine; per-workload rng streams make each evaluation self-contained.
  std::vector<workload::Measurement> t1_out, t2_out;
  std::thread t1([&] { evaluate_all(t1_out); });
  std::thread t2([&] { evaluate_all(t2_out); });
  t1.join();
  t2.join();

  for (std::size_t i = 0; i < workloads.size(); ++i) {
    for (const auto* par : {&t1_out, &t2_out}) {
      EXPECT_DOUBLE_EQ((*par)[i].rx_goodput_bps, serial[i].rx_goodput_bps);
      EXPECT_DOUBLE_EQ((*par)[i].pause_duration_ratio,
                       serial[i].pause_duration_ratio);
      EXPECT_DOUBLE_EQ((*par)[i].cost_seconds, serial[i].cost_seconds);
      EXPECT_EQ((*par)[i].dominant, serial[i].dominant);
    }
  }
}

// ---- Campaign ---------------------------------------------------------------

TEST(CampaignTest, PlanIsDeterministicAndCoversTheGrid) {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.seeds_per_cell = 2;
  const Campaign campaign(config);

  const auto plan = campaign.plan();
  ASSERT_EQ(plan.size(), 8u);
  const auto plan2 = campaign.plan();
  std::set<std::string> labels;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].label(), plan2[i].label());
    EXPECT_EQ(plan[i].stream, static_cast<u64>(i));
    labels.insert(plan[i].label());
  }
  EXPECT_EQ(labels.size(), 8u);  // no duplicate cells
  EXPECT_EQ(plan[0].label(), "B/Diag#0");
  EXPECT_EQ(plan[0].scope(ShareScope::kSubsystem), "B");
  EXPECT_EQ(plan[0].scope(ShareScope::kCell), "B/Diag#0");
}

TEST(CampaignTest, FabricScenariosAreCampaignDimensions) {
  CampaignConfig config;
  config.subsystems = {'F'};
  config.fabrics = {"pair", "hetero", "fanin4"};
  config.modes = {core::GuidanceMode::kDiag};
  config.seeds_per_cell = 1;
  const Campaign campaign(config);

  const auto plan = campaign.plan();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].label(), "F/Diag#0");  // pair keeps the seed's labels
  EXPECT_EQ(plan[1].label(), "F@hetero/Diag#0");
  EXPECT_EQ(plan[2].label(), "F@fanin4/Diag#0");
  // MFS regions only transfer within one scenario's space, so even the
  // widest scope separates scenarios.
  EXPECT_EQ(plan[0].scope(ShareScope::kSubsystem), "F");
  EXPECT_EQ(plan[1].scope(ShareScope::kSubsystem), "F@hetero");

  // Unknown scenarios are rejected at construction.
  CampaignConfig bad = config;
  bad.fabrics = {"no-such-fabric"};
  EXPECT_THROW(Campaign{bad}, std::invalid_argument);
}

// The tentpole acceptance: a campaign over the three catalog scenarios runs
// to completion with per-scenario coverage rows, and the pair cell inside
// the mixed campaign reproduces the standalone serial driver exactly.
TEST(CampaignTest, ThreeFabricScenarioCampaignRunsWithPerScenarioCoverage) {
  CampaignConfig config;
  config.subsystems = {'F'};
  config.fabrics = {"pair", "hetero", "fanin4"};
  config.modes = {core::GuidanceMode::kDiag};
  config.budget.seconds = 2 * 3600.0;
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  config.workers = 1;
  config.share = ShareScope::kCell;

  const CampaignResult result = Campaign(config).run();
  ASSERT_EQ(result.cells.size(), 3u);
  for (const CellResult& cr : result.cells) {
    EXPECT_GT(cr.result.experiments, 0) << cr.cell.label();
    EXPECT_GE(cr.result.elapsed_seconds, config.budget.seconds)
        << cr.cell.label();
  }

  const CampaignReport report = build_report(result);
  ASSERT_EQ(report.coverage.size(), 3u);
  EXPECT_EQ(report.coverage[0].fabric, "pair");
  EXPECT_EQ(report.coverage[1].fabric, "hetero");
  EXPECT_EQ(report.coverage[2].fabric, "fanin4");
  for (const SubsystemCoverage& cov : report.coverage) {
    EXPECT_EQ(cov.subsystem, 'F');
    EXPECT_EQ(cov.cells, 1);
    EXPECT_GT(cov.experiments, 0) << cov.fabric;
  }
  const std::string text = report.render();
  EXPECT_NE(text.find("fanin4"), std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"fabric\":\"hetero\""), std::string::npos);

  // Serial (1-worker) equivalence preserved: the pair cell replays a plain
  // SearchDriver run on the unmodified catalog subsystem, stream 0.
  const sim::Subsystem& sys = sim::subsystem('F');
  const workload::Engine engine(sys, fast_engine_opts());
  const core::SearchSpace space(sys);
  core::SearchDriver driver(engine, space);
  core::SaConfig sa = config.sa;
  sa.mode = core::GuidanceMode::kDiag;
  Rng rng = Rng(config.campaign_seed).split(0);
  const core::SearchResult serial =
      driver.run_simulated_annealing(sa, config.budget, rng);
  const core::SearchResult& pair_cell = result.cells[0].result;
  EXPECT_EQ(pair_cell.experiments, serial.experiments);
  EXPECT_DOUBLE_EQ(pair_cell.elapsed_seconds, serial.elapsed_seconds);
  ASSERT_EQ(pair_cell.found.size(), serial.found.size());
  for (std::size_t f = 0; f < serial.found.size(); ++f) {
    EXPECT_EQ(pair_cell.found[f].mfs.witness, serial.found[f].mfs.witness);
  }
}

TEST(CampaignTest, CcScenariosAreCampaignDimensions) {
  CampaignConfig config;
  config.subsystems = {'F'};
  config.fabrics = {"fanin4"};
  config.ccs = {"off", "dcqcn", "mistuned"};
  config.modes = {core::GuidanceMode::kDiag};
  const Campaign campaign(config);

  const auto plan = campaign.plan();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].label(), "F@fanin4/Diag#0");  // cc=off keeps old labels
  EXPECT_EQ(plan[1].label(), "F@fanin4+dcqcn/Diag#0");
  EXPECT_EQ(plan[2].label(), "F@fanin4+mistuned/Diag#0");
  // CC scenarios are distinct search spaces: scopes separate them.
  EXPECT_EQ(plan[0].scope(ShareScope::kSubsystem), "F@fanin4");
  EXPECT_EQ(plan[1].scope(ShareScope::kSubsystem), "F@fanin4+dcqcn");

  // Materialization arms both halves of the CC layer (or neither).
  EXPECT_FALSE(plan[0].materialize().cc_armed());
  EXPECT_TRUE(plan[1].materialize().cc_armed());
  EXPECT_TRUE(core::SearchSpace(plan[1].materialize()).cc_searchable());
  // The mistuned scenario arms the NIC but its thresholds cannot mark.
  const sim::Subsystem mist = plan[2].materialize();
  EXPECT_TRUE(mist.cc_armed());
  EXPECT_FALSE(mist.fabric.ecn(1).can_mark());

  CampaignConfig bad = config;
  bad.ccs = {"no-such-cc"};
  EXPECT_THROW(Campaign{bad}, std::invalid_argument);
}

// Regression: a cell that errors mid-run (here: a subsystem id missing from
// the catalog) used to take down the fleet — and, if it had been recorded,
// the report would have counted it as covered search time.  Now the failure
// is captured on the CellResult and the coverage rows separate covered
// cells from failed ones.
TEST(CampaignTest, FailedCellDoesNotCountAsCovered) {
  CampaignConfig config;
  config.subsystems = {'B', 'Z'};  // 'Z' does not exist
  config.modes = {core::GuidanceMode::kDiag};
  config.strategy = Strategy::kRandom;
  config.budget.seconds = 600.0;
  config.engine = fast_engine_opts();
  config.workers = 2;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult result = Campaign(config).run();  // must not throw
  ASSERT_EQ(result.cells.size(), 2u);
  const CellResult& good = result.cells[0];
  const CellResult& bad = result.cells[1];
  EXPECT_FALSE(good.failed());
  EXPECT_TRUE(bad.failed());
  EXPECT_NE(bad.error.find('Z'), std::string::npos);
  EXPECT_EQ(bad.result.experiments, 0);

  const CampaignReport report = build_report(result);
  ASSERT_EQ(report.coverage.size(), 2u);
  const SubsystemCoverage& cov_b = report.coverage[0];
  const SubsystemCoverage& cov_z = report.coverage[1];
  EXPECT_EQ(cov_b.subsystem, 'B');
  EXPECT_EQ(cov_b.cells, 1);
  EXPECT_EQ(cov_b.failed_cells, 0);
  EXPECT_GT(cov_b.experiments, 0);
  EXPECT_EQ(cov_z.subsystem, 'Z');
  EXPECT_EQ(cov_z.cells, 0);  // an aborted cell covered nothing
  EXPECT_EQ(cov_z.failed_cells, 1);
  EXPECT_EQ(cov_z.experiments, 0);
  EXPECT_DOUBLE_EQ(cov_z.elapsed_seconds, 0.0);
  EXPECT_EQ(report.total_experiments, cov_b.experiments);

  // The failure is visible in both renderings.
  EXPECT_NE(report.render().find("failed"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"failed_cells\":1"), std::string::npos);

  // Worker threads survive failing cells too.
  config.execution = ExecutionMode::kThreads;
  const CampaignResult threaded = Campaign(config).run();
  ASSERT_EQ(threaded.cells.size(), 2u);
  EXPECT_TRUE(threaded.cells[1].failed());
}

// The CC acceptance: a campaign over (subsystem x fabric x cc x mode x
// seed) discovers at least one anomaly region with a necessary condition
// in a CC-parameter dimension — the search found a workload whose anomaly
// appears or disappears with the DCQCN configuration.
TEST(CampaignTest, CcCampaignDiscoversCcParameterAnomalyRegion) {
  CampaignConfig config;
  config.subsystems = {'F'};
  config.fabrics = {"fanin4"};
  config.ccs = {"dcqcn"};
  config.modes = {core::GuidanceMode::kDiag};
  config.budget.seconds = 2 * 3600.0;
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  config.workers = 1;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult result = Campaign(config).run();
  const CampaignReport report = build_report(result);
  ASSERT_FALSE(report.anomalies.empty());
  bool cc_conditioned = false;
  for (const DedupedAnomaly& a : report.anomalies) {
    EXPECT_EQ(a.cc, "dcqcn");
    for (const core::FeatureCondition& c : a.representative.conditions) {
      if (c.feature == core::Feature::kDcqcn ||
          c.feature == core::Feature::kCcRateAi ||
          c.feature == core::Feature::kCcAlphaG) {
        cc_conditioned = true;
      }
    }
  }
  EXPECT_TRUE(cc_conditioned)
      << "no discovered anomaly region has a CC-parameter condition";
}

CampaignConfig small_campaign_config() {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag};
  config.budget.seconds = 2 * 3600.0;
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  return config;
}

TEST(CampaignTest, OneWorkerCampaignReproducesSerialDriverExactly) {
  CampaignConfig config = small_campaign_config();
  config.workers = 1;
  config.share = ShareScope::kCell;
  Campaign campaign(config);
  const CampaignResult result = campaign.run();
  ASSERT_EQ(result.cells.size(), 2u);

  const Rng root(config.campaign_seed);
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cr = result.cells[i];
    const sim::Subsystem& sys = sim::subsystem(cr.cell.subsystem);
    const workload::Engine engine(sys, fast_engine_opts());
    const core::SearchSpace space(sys);
    core::SearchDriver driver(engine, space);
    core::SaConfig sa = config.sa;
    sa.mode = cr.cell.mode;
    Rng rng = root.split(static_cast<u64>(i));
    const core::SearchResult serial =
        driver.run_simulated_annealing(sa, config.budget, rng);

    EXPECT_EQ(cr.result.experiments, serial.experiments);
    EXPECT_EQ(cr.result.mfs_skips, serial.mfs_skips);
    EXPECT_DOUBLE_EQ(cr.result.elapsed_seconds, serial.elapsed_seconds);
    ASSERT_EQ(cr.result.found.size(), serial.found.size());
    for (std::size_t f = 0; f < serial.found.size(); ++f) {
      EXPECT_EQ(cr.result.found[f].mfs.witness, serial.found[f].mfs.witness);
      EXPECT_DOUBLE_EQ(cr.result.found[f].found_at_seconds,
                       serial.found[f].found_at_seconds);
    }
    EXPECT_EQ(cr.cross_worker_skips, 0);
  }
}

TEST(CampaignTest, ThreadedKCellCampaignMatchesDeterministicMode) {
  CampaignConfig config = small_campaign_config();
  config.workers = 2;
  config.share = ShareScope::kCell;  // private scopes: schedule-independent

  config.execution = ExecutionMode::kDeterministic;
  const CampaignResult reference = Campaign(config).run();
  config.execution = ExecutionMode::kThreads;
  const CampaignResult threaded = Campaign(config).run();

  ASSERT_EQ(threaded.cells.size(), reference.cells.size());
  for (std::size_t i = 0; i < reference.cells.size(); ++i) {
    EXPECT_EQ(threaded.cells[i].worker, reference.cells[i].worker);
    EXPECT_EQ(threaded.cells[i].result.experiments,
              reference.cells[i].result.experiments);
    EXPECT_EQ(threaded.cells[i].result.found.size(),
              reference.cells[i].result.found.size());
    EXPECT_DOUBLE_EQ(threaded.cells[i].result.elapsed_seconds,
                     reference.cells[i].result.elapsed_seconds);
  }
  EXPECT_DOUBLE_EQ(threaded.makespan_seconds, reference.makespan_seconds);
}

TEST(CampaignTest, DeterministicSharedCampaignIsReproducible) {
  CampaignConfig config = small_campaign_config();
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.workers = 2;
  config.share = ShareScope::kSubsystem;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult a = Campaign(config).run();
  const CampaignResult b = Campaign(config).run();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].result.experiments, b.cells[i].result.experiments);
    EXPECT_EQ(a.cells[i].result.found.size(), b.cells[i].result.found.size());
    EXPECT_EQ(a.cells[i].cross_worker_skips, b.cells[i].cross_worker_skips);
  }
  EXPECT_EQ(a.pool.cross_worker_hits, b.pool.cross_worker_hits);
}

// Ground-truth anomaly identity of every discovery, per subsystem — the
// same labeling the figure benches use (bench/harness.h).  "Deduped anomaly
// set" below means this: distinct catalogued anomalies, not raw MFS regions
// (one true anomaly yields many overlapping regions across runs).
std::map<char, std::set<int>> catalog_id_sets(const CampaignResult& result) {
  const auto to_catalog = [](core::Symptom s) {
    return s == core::Symptom::kPauseFrames ? catalog::Symptom::kPauseFrames
                                            : catalog::Symptom::kLowThroughput;
  };
  std::map<char, std::set<int>> out;
  for (const CellResult& cr : result.cells) {
    const std::string chip = sim::subsystem(cr.cell.subsystem).nicm.chip;
    for (const core::FoundAnomaly& f : cr.result.found) {
      int id = catalog::label_by_mechanism(chip, cr.cell.fabric,
                                           f.mfs.witness, f.dominant,
                                           to_catalog(f.mfs.symptom));
      if (id == 0) {
        const auto labels =
            catalog::label(chip, f.mfs.witness, to_catalog(f.mfs.symptom));
        if (!labels.empty()) id = labels.front();
      }
      if (id != 0) out[cr.cell.subsystem].insert(id);
    }
  }
  return out;
}

// The satellite requirement: on subsystems B and F, a 2-worker campaign with
// a shared MFS pool finds the same deduped anomaly set as independent serial
// runs of the same cells, and the sharing shows up as cross-worker skips.
// Deterministic execution makes this exact-match assertion schedule-proof.
TEST(CampaignTest, TwoWorkerSharedPoolMatchesSerialDedupedAnomalySet) {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.budget.seconds = 8 * 3600.0;
  config.campaign_seed = 3;
  config.engine = fast_engine_opts();
  config.workers = 2;
  config.execution = ExecutionMode::kDeterministic;

  config.share = ShareScope::kSubsystem;
  const CampaignResult shared = Campaign(config).run();
  config.share = ShareScope::kCell;  // serial semantics: private stores
  const CampaignResult serial = Campaign(config).run();

  // Cross-worker pruning happened...
  EXPECT_GE(shared.total_cross_worker_skips(), 1);
  EXPECT_GE(shared.pool.cross_worker_hits, 1);
  EXPECT_EQ(serial.total_cross_worker_skips(), 0);

  // ...and the campaign still finds exactly the anomalies the serial runs
  // find, on both subsystems.
  const auto shared_ids = catalog_id_sets(shared);
  const auto serial_ids = catalog_id_sets(serial);
  EXPECT_FALSE(serial_ids.at('B').empty());
  EXPECT_FALSE(serial_ids.at('F').empty());
  EXPECT_EQ(shared_ids, serial_ids);

  // Sharing reduces re-explanations: raw discoveries collapse onto fewer or
  // equal distinct regions than the serial runs needed.
  const CampaignReport shared_report = build_report(shared);
  const CampaignReport serial_report = build_report(serial);
  EXPECT_GT(shared_report.total_experiments, 0);
  EXPECT_GT(serial_report.total_experiments, 0);
}

TEST(CampaignTest, ThreadedSharedCampaignRunsAllCellsConsistently) {
  CampaignConfig config = small_campaign_config();
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.workers = 2;
  config.share = ShareScope::kSubsystem;
  config.execution = ExecutionMode::kThreads;

  const CampaignResult result = Campaign(config).run();
  ASSERT_EQ(result.cells.size(), 4u);
  double serial_sum = 0.0;
  for (const CellResult& cr : result.cells) {
    EXPECT_GE(cr.worker, 0);
    EXPECT_GT(cr.result.experiments, 0);
    EXPECT_GE(cr.result.elapsed_seconds, config.budget.seconds);
    serial_sum += cr.result.elapsed_seconds;
  }
  EXPECT_DOUBLE_EQ(result.serial_seconds, serial_sum);
  EXPECT_LE(result.makespan_seconds, result.serial_seconds);
  EXPECT_GE(result.pool.hits, result.pool.cross_worker_hits);
  EXPECT_GE(result.pool.entries, 1);
}

TEST(CampaignTest, SpeedupAccountsSimulatedMakespan) {
  CampaignConfig config = small_campaign_config();
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.workers = 2;
  config.share = ShareScope::kCell;
  config.budget.seconds = 1 * 3600.0;

  const CampaignResult result = Campaign(config).run();
  ASSERT_EQ(result.cells.size(), 4u);
  // Four equal-budget cells over two workers: close to 2x.
  EXPECT_GE(result.speedup(), 1.7);
  EXPECT_LE(result.speedup(), 2.3);
  EXPECT_GT(result.makespan_seconds, 0.0);
  EXPECT_LT(result.makespan_seconds, result.serial_seconds);
}

// ---- Warm start & pool persistence ------------------------------------------

TEST(ConcurrentMfsPoolTest, WarmEntriesAreAttributedToThePreviousCampaign) {
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(31);
  const Workload w = space.random_point(rng);

  ConcurrentMfsPool pool;
  pool.load_scope("F", {cover_all_mfs(core::Symptom::kPauseFrames)});
  EXPECT_EQ(pool.stats().entries, 1);
  EXPECT_EQ(pool.stats().warm_entries, 1);

  // A hit on a loaded entry is a warm hit, never a cross-worker one.
  ConcurrentMfsPool::View view = pool.view("F", /*worker=*/0);
  EXPECT_TRUE(view.covers(space, w));
  EXPECT_EQ(view.warm_hits(), 1);
  EXPECT_EQ(view.cross_worker_hits(), 0);
  EXPECT_EQ(pool.stats().warm_hits, 1);
  EXPECT_EQ(pool.stats().cross_worker_hits, 0);

  // covers_preloaded sees loaded entries only: a fresh insert by another
  // worker does not pre-load anything.
  ConcurrentMfsPool other;
  other.insert("F", space, cover_all_mfs(core::Symptom::kPauseFrames), 1);
  ConcurrentMfsPool::View other_view = other.view("F", /*worker=*/0);
  EXPECT_FALSE(other_view.covers_preloaded(space, w));
  EXPECT_TRUE(view.covers_preloaded(space, w));
}

// The tentpole acceptance, pathological half: when the loaded regions cover
// the entire space, a warm-started campaign performs literally zero probes —
// every sampled candidate is a MatchMFS skip and the run ends as explained.
TEST(CampaignTest, WarmStartSpendsZeroProbesInsideLoadedRegions) {
  for (const Strategy strategy :
       {Strategy::kSimulatedAnnealing, Strategy::kRandom}) {
    CampaignConfig config;
    config.subsystems = {'B'};
    config.modes = {core::GuidanceMode::kDiag};
    config.strategy = strategy;
    config.budget.seconds = 2 * 3600.0;
    config.engine = fast_engine_opts();
    config.workers = 1;
    config.execution = ExecutionMode::kDeterministic;
    CampaignCheckpoint warm;
    warm.scopes["B"] = {cover_all_mfs(core::Symptom::kPauseFrames)};
    config.warm_start = warm;

    const CampaignResult result = Campaign(config).run();
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_FALSE(result.cells[0].skipped);  // the cell ran...
    EXPECT_EQ(result.cells[0].result.experiments, 0)
        << to_string(strategy) << " probed inside a loaded region";
    EXPECT_GT(result.cells[0].result.mfs_skips, 0) << to_string(strategy);
    EXPECT_GT(result.cells[0].warm_start_skips, 0) << to_string(strategy);
    EXPECT_TRUE(result.cells[0].result.found.empty());
    EXPECT_EQ(result.pool.warm_entries, 1);
    EXPECT_GT(result.pool.warm_hits, 0);
  }
}

// The tentpole acceptance, realistic half: checkpoint a campaign, re-run it
// warm-started with an extra seed.  The completed cell is skipped outright
// (own `skipped` column, not covered), the fresh cell searches with the
// loaded regions armed, and nothing it probes falls inside one — pinned
// structurally: every new witness was measured, so MatchMFS must have
// declined it, so no loaded MFS may cover it.
TEST(CampaignTest, WarmStartedCampaignSkipsYesterdaysRegionsAndCells) {
  CampaignConfig config;
  config.subsystems = {'B'};
  config.modes = {core::GuidanceMode::kDiag};
  config.budget.seconds = 6 * 3600.0;
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  config.workers = 1;
  config.share = ShareScope::kSubsystem;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult stage1 = Campaign(config).run();
  ASSERT_EQ(stage1.cells.size(), 1u);
  ASSERT_FALSE(stage1.cells[0].result.found.empty())
      << "stage 1 found nothing; the warm-start assertions would be vacuous";
  const CampaignCheckpoint ck_written = make_checkpoint(stage1);
  ASSERT_FALSE(ck_written.scopes.at("B").empty());
  EXPECT_EQ(ck_written.completed_cells,
            std::vector<std::string>{"B/Diag#0"});
  // Persist through JSON, as the CLI does.
  const CampaignCheckpoint ck =
      CampaignCheckpoint::from_json(ck_written.to_json());

  // Identical re-run from the checkpoint: everything is skipped, zero
  // experiments ("zero re-probes", the CI smoke in test form).
  CampaignConfig rerun = config;
  rerun.warm_start = ck;
  const CampaignResult replayed = Campaign(rerun).run();
  ASSERT_EQ(replayed.cells.size(), 1u);
  EXPECT_TRUE(replayed.cells[0].skipped);
  EXPECT_EQ(replayed.cells[0].result.experiments, 0);
  const CampaignReport rerun_report = build_report(replayed);
  EXPECT_EQ(rerun_report.total_experiments, 0);
  ASSERT_EQ(rerun_report.coverage.size(), 1u);
  EXPECT_EQ(rerun_report.coverage[0].cells, 0);
  EXPECT_EQ(rerun_report.coverage[0].skipped_cells, 1);
  // A skipped cell stays completed in the next checkpoint (resumability).
  EXPECT_TRUE(make_checkpoint(replayed).completed("B/Diag#0"));

  // A checkpoint only loads under the sharing policy it was taken with:
  // cell-scoped keys would never be queried by subsystem-share views.
  CampaignConfig wrong_share = config;
  wrong_share.share = ShareScope::kCell;
  wrong_share.warm_start = ck;
  EXPECT_THROW(Campaign(wrong_share).run(), std::invalid_argument);

  // Grown grid: the new seed runs against the loaded regions.
  CampaignConfig stage2 = config;
  stage2.seeds_per_cell = 2;
  stage2.warm_start = ck;
  const CampaignResult result2 = Campaign(stage2).run();
  ASSERT_EQ(result2.cells.size(), 2u);
  EXPECT_TRUE(result2.cells[0].skipped);
  EXPECT_FALSE(result2.cells[1].skipped);
  EXPECT_GT(result2.cells[1].result.experiments, 0);
  EXPECT_EQ(result2.pool.warm_entries,
            static_cast<i64>(ck.scopes.at("B").size()));

  const core::SearchSpace space(sim::subsystem('B'));
  for (const core::FoundAnomaly& f : result2.cells[1].result.found) {
    for (const core::Mfs& loaded : ck.scopes.at("B")) {
      EXPECT_FALSE(loaded.matches(space, f.mfs.witness))
          << "stage 2 re-explained a loaded region";
    }
  }

  const CampaignReport report2 = build_report(result2);
  ASSERT_EQ(report2.coverage.size(), 1u);
  EXPECT_EQ(report2.coverage[0].cells, 1);
  EXPECT_EQ(report2.coverage[0].skipped_cells, 1);
  EXPECT_EQ(report2.coverage[0].failed_cells, 0);
  EXPECT_NE(report2.render().find("skipped"), std::string::npos);
  EXPECT_NE(report2.to_json().find("\"skipped_cells\":1"), std::string::npos);
  if (result2.pool.warm_hits > 0) {
    EXPECT_NE(report2.render().find("warm start:"), std::string::npos);
  }
}

// Regression for the coverage fix: a warm-start-skipped cell must appear in
// `skipped`, never inflate `covered`, and contribute no experiments/time.
TEST(CampaignReportTest, SkippedCellsDoNotInflateCoverage) {
  CampaignResult result;
  CellResult ran;
  ran.cell.subsystem = 'B';
  ran.worker = 0;
  ran.result.experiments = 10;
  ran.result.elapsed_seconds = 600.0;
  result.cells.push_back(ran);
  CellResult skipped;
  skipped.cell.subsystem = 'B';
  skipped.cell.seed_ordinal = 1;
  skipped.skipped = true;
  result.cells.push_back(skipped);

  const CampaignReport report = build_report(result);
  ASSERT_EQ(report.coverage.size(), 1u);
  EXPECT_EQ(report.coverage[0].cells, 1);
  EXPECT_EQ(report.coverage[0].skipped_cells, 1);
  EXPECT_EQ(report.coverage[0].failed_cells, 0);
  EXPECT_EQ(report.coverage[0].experiments, 10);
  EXPECT_EQ(report.total_experiments, 10);
  EXPECT_DOUBLE_EQ(report.coverage[0].elapsed_seconds, 600.0);
}

// ---- Scheduling: LPT, work stealing, replay ---------------------------------

// The satellite requirement: on a pinned mixed-budget grid, LPT beats
// round-robin makespan, while per-cell results stay bit-identical (cells are
// schedule-independent under cell scopes).
TEST(CampaignTest, LptBeatsRoundRobinOnMixedBudgetGrid) {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag};
  config.seeds_per_cell = 3;                          // 6 cells
  config.budget_cycle_seconds = {4 * 3600.0, 1 * 3600.0};
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  config.workers = 2;
  config.share = ShareScope::kCell;
  config.execution = ExecutionMode::kDeterministic;

  config.schedule = SchedulePolicy::kRoundRobin;
  const CampaignResult rr = Campaign(config).run();
  config.schedule = SchedulePolicy::kLpt;
  const CampaignResult lpt = Campaign(config).run();

  // Same cells, same per-cell trajectories — only the packing differs.
  ASSERT_EQ(rr.cells.size(), 6u);
  ASSERT_EQ(lpt.cells.size(), 6u);
  EXPECT_DOUBLE_EQ(rr.serial_seconds, lpt.serial_seconds);
  for (std::size_t i = 0; i < rr.cells.size(); ++i) {
    EXPECT_EQ(rr.cells[i].result.experiments,
              lpt.cells[i].result.experiments);
    EXPECT_DOUBLE_EQ(rr.cells[i].result.elapsed_seconds,
                     lpt.cells[i].result.elapsed_seconds);
  }

  // Round-robin stacks the three 4-hour cells (plan indices 0, 2, 4) onto
  // worker 0 for a ~12 h makespan; LPT packs them ~8 h.
  EXPECT_GT(rr.makespan_seconds, 11 * 3600.0);
  EXPECT_LT(lpt.makespan_seconds, 9 * 3600.0);
  EXPECT_GT(rr.makespan_seconds, 1.3 * lpt.makespan_seconds);
  EXPECT_EQ(lpt.schedule.queues[0], (std::vector<std::size_t>{0, 4}));
  EXPECT_EQ(lpt.schedule.queues[1], (std::vector<std::size_t>{2, 1, 3, 5}));
}

// The determinism satellite: record a steal schedule once, then replay it at
// 1/2/4 physical workers — the CampaignReport JSON is bit-for-bit identical
// every time (golden rows), in both execution modes.
TEST(CampaignTest, ReplayIsBitForBitIdenticalAcrossWorkerCounts) {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag};
  config.seeds_per_cell = 2;                          // 4 cells
  config.budget_cycle_seconds = {2 * 3600.0, 1 * 3600.0};
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  config.workers = 3;
  config.share = ShareScope::kCell;
  config.schedule = SchedulePolicy::kLpt;
  config.execution = ExecutionMode::kDeterministic;

  Campaign recorder(config);
  const CampaignResult recorded = recorder.run();
  const CampaignReport golden = build_report(recorded);
  const std::string golden_json = golden.to_json();
  EXPECT_NE(golden_json.find("\"workers\":3"), std::string::npos);

  // The schedule survives its JSON round trip (what --replay reloads).
  std::vector<std::string> labels;
  std::vector<double> budgets;
  for (const auto& cell : recorder.plan()) {
    labels.push_back(cell.label());
    budgets.push_back(cell.budget_seconds);
  }
  const Schedule reloaded = schedule_from_json(
      schedule_to_json(recorded.schedule, labels, budgets));

  for (const int physical_workers : {1, 2, 4}) {
    for (const ExecutionMode exec :
         {ExecutionMode::kDeterministic, ExecutionMode::kThreads}) {
      CampaignConfig replay_config = config;
      replay_config.workers = physical_workers;
      replay_config.execution = exec;
      replay_config.replay = reloaded;
      const CampaignResult replayed = Campaign(replay_config).run();
      EXPECT_EQ(replayed.workers, 3);  // logical workers from the schedule
      EXPECT_EQ(build_report(replayed).to_json(), golden_json)
          << "replay diverged at " << physical_workers << " workers, "
          << to_string(exec);
    }
  }

  // A schedule recorded against a different plan is rejected loudly.
  CampaignConfig drifted = config;
  drifted.seeds_per_cell = 3;
  drifted.replay = reloaded;
  EXPECT_THROW(Campaign(drifted).run(), std::invalid_argument);

  // ...and so is one recorded under different budgets: same labels, but
  // silently re-dispatching under new --hours would void the bit-for-bit
  // promise.
  CampaignConfig rebudgeted = config;
  rebudgeted.budget_cycle_seconds = {3 * 3600.0, 1 * 3600.0};
  rebudgeted.replay = reloaded;
  EXPECT_THROW(Campaign(rebudgeted).run(), std::invalid_argument);
}

// The reclamation acceptance, campaign half: keep_epochs is purely a memory
// knob.  The same campaign run under aggressive reclamation (free every
// superseded snapshot) and under effectively-infinite retention produces a
// bit-identical report JSON — reclamation changes when snapshots are freed,
// never which snapshot a search observes.
TEST(CampaignTest, ReportJsonIsBitIdenticalAcrossRetentionPolicies) {
  CampaignConfig config = small_campaign_config();
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.workers = 2;
  config.share = ShareScope::kSubsystem;
  config.execution = ExecutionMode::kDeterministic;

  config.pool.keep_epochs = 0;  // reclaim everything superseded, immediately
  const CampaignResult eager = Campaign(config).run();
  config.pool.keep_epochs = 1 << 20;  // retain effectively everything
  const CampaignResult hoarder = Campaign(config).run();

  EXPECT_EQ(build_report(eager).to_json(), build_report(hoarder).to_json());
  EXPECT_EQ(eager.pool.entries, hoarder.pool.entries);
  EXPECT_EQ(eager.pool.hits, hoarder.pool.hits);
}

// ---- CampaignReport ---------------------------------------------------------

TEST(CampaignReportTest, DedupesCollapseRepeatDiscoveries) {
  CampaignConfig config = small_campaign_config();
  config.subsystems = {'F'};
  config.modes = {core::GuidanceMode::kDiag, core::GuidanceMode::kPerf};
  config.workers = 2;
  config.share = ShareScope::kSubsystem;
  config.execution = ExecutionMode::kDeterministic;
  config.budget.seconds = 4 * 3600.0;

  const CampaignResult result = Campaign(config).run();
  const CampaignReport report = build_report(result);

  int raw_found = 0;
  for (const CellResult& cr : result.cells) {
    raw_found += static_cast<int>(cr.result.found.size());
  }
  int occurrences = 0;
  for (const DedupedAnomaly& a : report.anomalies) {
    occurrences += a.occurrences;
    EXPECT_EQ(a.subsystem, 'F');
    EXPECT_NE(a.symptom, core::Symptom::kNone);
    EXPECT_GE(a.occurrences, 1);
  }
  EXPECT_EQ(occurrences, raw_found);
  EXPECT_LE(static_cast<int>(report.anomalies.size()), raw_found);
  ASSERT_EQ(report.coverage.size(), 1u);
  EXPECT_EQ(report.coverage[0].anomalies_found, raw_found);
  EXPECT_EQ(report.coverage[0].distinct_anomalies,
            static_cast<int>(report.anomalies.size()));
}

TEST(CampaignReportTest, RenderAndJsonCarryTheSummary) {
  CampaignConfig config = small_campaign_config();
  config.workers = 2;
  config.budget.seconds = 1 * 3600.0;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult result = Campaign(config).run();
  const CampaignReport report = build_report(result);

  const std::string text = report.render();
  EXPECT_NE(text.find("Per-subsystem coverage"), std::string::npos);
  EXPECT_NE(text.find("speedup"), std::string::npos);
  EXPECT_NE(text.find("shared MFS pool"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"anomalies\""), std::string::npos);
  // Structural well-formedness: no value string in this document contains
  // brackets, so a container-close immediately followed by a quote means a
  // missing separator (the JsonWriter regression that made campaign --json
  // unparseable).
  EXPECT_EQ(json.find("]\""), std::string::npos);
  EXPECT_EQ(json.find("}\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(CampaignReportTest, AggregateTraceIsMergedAndOrdered) {
  CampaignConfig config = small_campaign_config();
  config.workers = 2;
  config.budget.seconds = 1 * 3600.0;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult result = Campaign(config).run();
  const auto trace = aggregate_trace(result);

  std::size_t expected = 0;
  for (const CellResult& cr : result.cells) expected += cr.result.trace.size();
  EXPECT_EQ(trace.size(), expected);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].t_seconds, trace[i].t_seconds);
  }
  const std::string csv = aggregate_trace_csv(result);
  EXPECT_NE(csv.find("t_seconds,worker,cell"), std::string::npos);
}

TEST(CampaignReportTest, AggregateTraceEmptyResultIsHeaderOnly) {
  const CampaignResult empty;
  EXPECT_TRUE(aggregate_trace(empty).empty());
  const std::string csv = aggregate_trace_csv(empty);
  EXPECT_EQ(csv,
            "t_seconds,worker,cell,counter_value,anomaly_found,"
            "in_mfs_extraction\n");
}

// Synthetic cell results exercising the merge directly: points from
// different cells interleave on the campaign timeline, and equal timestamps
// order by worker id regardless of cell insertion order.
TEST(CampaignReportTest, AggregateTraceMergesCellsAndTieBreaksByWorker) {
  CampaignResult result;
  CellResult late;
  late.cell.subsystem = 'B';
  late.worker = 3;
  late.start_seconds = 10.0;
  late.result.trace.push_back({5.0, 1.0, 0.0, false, false});  // t = 15
  late.result.trace.push_back({10.0, 2.0, 0.0, false, false});  // t = 20
  CellResult early;
  early.cell.subsystem = 'F';
  early.worker = 1;
  early.start_seconds = 0.0;
  early.result.trace.push_back({5.0, 3.0, 0.0, false, false});  // t = 5
  early.result.trace.push_back({15.0, 4.0, 0.0, false, false});  // t = 15
  result.cells.push_back(std::move(late));  // inserted before `early`
  result.cells.push_back(std::move(early));

  const auto trace = aggregate_trace(result);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace[0].t_seconds, 5.0);
  EXPECT_EQ(trace[0].worker, 1);
  // The t=15 tie orders worker 1 before worker 3.
  EXPECT_DOUBLE_EQ(trace[1].t_seconds, 15.0);
  EXPECT_EQ(trace[1].worker, 1);
  EXPECT_DOUBLE_EQ(trace[2].t_seconds, 15.0);
  EXPECT_EQ(trace[2].worker, 3);
  EXPECT_DOUBLE_EQ(trace[3].t_seconds, 20.0);
  EXPECT_EQ(trace[3].worker, 3);
  EXPECT_EQ(trace[0].cell, "F/Diag#0");
}

TEST(CampaignReportTest, AggregateTraceCsvEscapesLabels) {
  // A fabric name with a comma and a quote lands in the cell label; the CSV
  // field must be RFC-4180 quoted (internal quotes doubled) so the row
  // keeps its column count.
  CampaignResult result;
  CellResult cr;
  cr.cell.subsystem = 'B';
  cr.cell.fabric = "we,ird\"net";
  cr.worker = 0;
  cr.result.trace.push_back({1.0, 2.0, 0.0, true, false});
  result.cells.push_back(std::move(cr));

  const std::string csv = aggregate_trace_csv(result);
  EXPECT_NE(csv.find("\"B@we,ird\"\"net/Diag#0\""), std::string::npos);
  // Exactly header + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  // The data row still has 5 commas outside the quoted field... which is
  // easiest to check by splitting on the quoted label.
  const std::size_t open = csv.find('"');
  const std::size_t close = csv.rfind('"');
  ASSERT_NE(open, std::string::npos);
  const std::size_t row_start = csv.find('\n') + 1;
  const std::string before = csv.substr(row_start, open - row_start);
  const std::string after = csv.substr(close + 1);
  EXPECT_EQ(std::count(before.begin(), before.end(), ','), 2);
  EXPECT_EQ(std::count(after.begin(), after.end(), ','), 3);
}

// ---- Telemetry threading ---------------------------------------------------

TEST(CampaignTest, TelemetryDoesNotPerturbTheReport) {
  // The acceptance bar for the obs layer: a campaign with telemetry
  // attached produces a bit-identical report (metrics live in a separate
  // snapshot, never in the report JSON by default), and the counters agree
  // with the report's own totals.
  CampaignConfig config = small_campaign_config();
  config.workers = 2;
  config.share = ShareScope::kSubsystem;
  config.execution = ExecutionMode::kDeterministic;

  const CampaignResult plain = Campaign(config).run();

  obs::TelemetryOptions topts;
  topts.workers = config.workers;
  obs::Telemetry telemetry(topts);
  config.telemetry = &telemetry;
  const CampaignResult instrumented = Campaign(config).run();

  const std::string plain_json = build_report(plain).to_json();
  const CampaignReport report = build_report(instrumented);
  EXPECT_EQ(report.to_json(), plain_json);

  const obs::Snapshot snap = telemetry.snapshot();
  EXPECT_EQ(snap.counters.at("probe.experiments"),
            static_cast<i64>(report.total_experiments));
  EXPECT_EQ(snap.counters.at("campaign.cells_completed"),
            static_cast<i64>(instrumented.cells.size()));
  EXPECT_GT(snap.histograms.at("engine.eval_ns").count, 0u);
  // Pool traffic was attributed (covers misses at minimum).
  EXPECT_GT(snap.counters.at("pool.misses"), 0);
  // The report embeds the snapshot only when asked.
  const std::string with_metrics = report.to_json(&snap);
  EXPECT_NE(with_metrics, plain_json);
  EXPECT_NE(with_metrics.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(plain_json.find("\"metrics\""), std::string::npos);
  // The embedded document still parses as a report.
  const CampaignReport back = campaign_report_from_json(with_metrics);
  EXPECT_EQ(back.total_experiments, report.total_experiments);
}

// ---- Durable journal & crash resume -----------------------------------------

std::string journal_tmp(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "collie_orch_journal_" + name;
  std::remove(path.c_str());
  std::remove((path + ".torn").c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

CampaignConfig journaled_campaign_config() {
  CampaignConfig config;
  config.subsystems = {'B', 'F'};
  config.modes = {core::GuidanceMode::kDiag};
  config.seeds_per_cell = 2;  // 4 cells
  config.budget.seconds = 0.3 * 3600.0;
  config.campaign_seed = 17;
  config.engine = fast_engine_opts();
  config.workers = 2;
  config.share = ShareScope::kCell;
  config.execution = ExecutionMode::kDeterministic;
  return config;
}

struct JournaledRun {
  CampaignResult result;
  std::string report_json;
  i64 replayed = 0;  // probes served from the journaled prefix
  i64 live = 0;      // probes executed on the real substrate
};

// Run `config` journaling into `path` (appending when the file already
// holds a valid prefix), optionally resuming from parsed journal state —
// exactly the wiring the campaign CLI does for --journal / --resume.
JournaledRun run_journaled(CampaignConfig config, const std::string& path,
                           const JournalResume* resume) {
  CampaignJournal journal(path, /*journal_every=*/4);
  auto splice =
      std::make_shared<SpliceBackendFactory>(nullptr, resume, &journal);
  config.journal = &journal;
  config.resume = resume;
  if (resume != nullptr) config.replay = resume->schedule;
  config.backend_factory = splice;
  JournaledRun out;
  out.result = Campaign(config).run();
  out.report_json = build_report(out.result).to_json();
  out.replayed = splice->replayed();
  out.live = splice->live();
  return out;
}

i64 total_experiments(const CampaignResult& result) {
  i64 total = 0;
  for (const CellResult& cr : result.cells) total += cr.result.experiments;
  return total;
}

// Journaling is pure observation: a journaled campaign's report is
// byte-identical to the plain run's, every executed probe was journaled
// live (none replayed), and the journal parses back into a fully completed
// resume state.
TEST(CampaignJournalTest, JournalingNeverPerturbsTheReport) {
  const CampaignConfig config = journaled_campaign_config();
  const std::string golden = build_report(Campaign(config).run()).to_json();

  const std::string path = journal_tmp("perturb.journal");
  const JournaledRun run = run_journaled(config, path, nullptr);
  EXPECT_EQ(run.report_json, golden);
  EXPECT_EQ(run.replayed, 0);
  EXPECT_EQ(run.live, total_experiments(run.result));

  const JournalRecovery rec = recover_journal(path, /*repair=*/false);
  ASSERT_FALSE(rec.torn);
  const JournalResume resume = parse_journal(rec.payloads);
  EXPECT_TRUE(resume.has_begin);
  EXPECT_EQ(resume.share, "cell");
  EXPECT_EQ(resume.completed.size(), run.result.cells.size());
  EXPECT_TRUE(resume.partial.empty());  // cell_done supersedes every probe
  EXPECT_EQ(resume.probes, run.live);
  std::remove(path.c_str());
}

// The tentpole acceptance, frame-boundary half: cut the journal after
// every sampled record count ("crash after the Nth journaled probe"),
// resume, and demand (a) a byte-identical report and (b) zero probes
// re-spent inside journaled regions — every journaled probe of a partial
// cell is replayed, restored cells re-execute nothing, and live probes are
// exactly the lost remainder.
TEST(CampaignJournalTest, ResumeFromEverySampledRecordPrefixIsByteIdentical) {
  const CampaignConfig config = journaled_campaign_config();
  const std::string path = journal_tmp("prefix-sweep.journal");
  const JournaledRun full = run_journaled(config, path, nullptr);
  const i64 total = total_experiments(full.result);

  const JournalRecovery rec = recover_journal(path, /*repair=*/false);
  ASSERT_FALSE(rec.torn);
  const std::size_t frames = rec.payloads.size();
  ASSERT_GT(frames, 12u);

  std::vector<std::size_t> cuts = {1, frames - 1, frames};
  for (std::size_t k = 4; k < frames; k += 7) cuts.push_back(k);
  const std::string cut_path = journal_tmp("prefix-cut.journal");
  for (const std::size_t k : cuts) {
    std::remove(cut_path.c_str());
    {
      JournalWriter writer(cut_path);
      for (std::size_t i = 0; i < k; ++i) writer.append(rec.payloads[i]);
      writer.sync();
    }
    const JournalRecovery cut_rec = recover_journal(cut_path, /*repair=*/true);
    ASSERT_FALSE(cut_rec.torn) << "cut " << k;
    const JournalResume resume = parse_journal(cut_rec.payloads);
    ASSERT_TRUE(resume.has_begin) << "cut " << k;

    i64 restored = 0;
    for (const auto& [label, rc] : resume.completed) {
      (void)label;
      restored += rc.result.result.experiments;
    }
    i64 journaled_prefix = 0;
    for (const auto& [ctx, probes] : resume.partial) {
      (void)ctx;
      journaled_prefix += static_cast<i64>(probes.size());
    }

    const JournaledRun resumed = run_journaled(config, cut_path, &resume);
    EXPECT_EQ(resumed.report_json, full.report_json) << "cut " << k;
    EXPECT_EQ(resumed.replayed, journaled_prefix) << "cut " << k;
    EXPECT_EQ(resumed.live, total - restored - journaled_prefix)
        << "cut " << k;

    // The resumed journal is append-only: it now parses as one fully
    // completed campaign with a session boundary, never a second begin.
    const JournalResume after =
        parse_journal(recover_journal(cut_path, false).payloads);
    EXPECT_EQ(after.sessions, 2) << "cut " << k;
    EXPECT_EQ(after.completed.size(), full.result.cells.size()) << "cut " << k;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// The tentpole acceptance, torn-byte half, pinned at 1/2/4 workers: kill
// the journal at arbitrary byte offsets (mid-frame tears included), let
// recovery quarantine the torn suffix, and resume to a byte-identical
// report.
TEST(CampaignJournalTest, TornByteOffsetResumeIsByteIdenticalAt124Workers) {
  for (const int workers : {1, 2, 4}) {
    CampaignConfig config = journaled_campaign_config();
    config.workers = workers;
    const std::string path =
        journal_tmp("torn-w" + std::to_string(workers) + ".journal");
    const JournaledRun full = run_journaled(config, path, nullptr);
    const std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 400u);

    const std::string cut_path =
        journal_tmp("torn-cut-w" + std::to_string(workers) + ".journal");
    for (const std::size_t cut : {bytes.size() * 3 / 10 + 1,
                                  bytes.size() * 7 / 10 + 3,
                                  bytes.size() - 5}) {
      std::remove(cut_path.c_str());
      std::remove((cut_path + ".torn").c_str());
      spit(cut_path, bytes.substr(0, cut));
      const JournalRecovery rec = recover_journal(cut_path, /*repair=*/true);
      ASSERT_TRUE(rec.existed);
      ASSERT_LE(rec.valid_bytes, cut);
      if (rec.torn) {
        // The torn suffix is quarantined byte-for-byte before resume.
        EXPECT_EQ(slurp(rec.torn_path),
                  bytes.substr(rec.valid_bytes, cut - rec.valid_bytes))
            << workers << " workers, cut " << cut;
        EXPECT_EQ(slurp(cut_path).size(), rec.valid_bytes);
      }
      const JournalResume resume = parse_journal(rec.payloads);
      ASSERT_TRUE(resume.has_begin) << workers << " workers, cut " << cut;
      const JournaledRun resumed = run_journaled(config, cut_path, &resume);
      EXPECT_EQ(resumed.report_json, full.report_json)
          << workers << " workers, cut " << cut;
    }
    std::remove(path.c_str());
    std::remove(cut_path.c_str());
    std::remove((cut_path + ".torn").c_str());
  }
}

// Cutting exactly after a cell_done frame restores that cell verbatim: the
// resumed campaign replays nothing for it, spends zero probes on it, and
// still reports byte-identically.
TEST(CampaignJournalTest, RestoredCellsShortCircuitWithZeroReplay) {
  CampaignConfig config = journaled_campaign_config();
  config.workers = 1;
  const std::string path = journal_tmp("restored.journal");
  const JournaledRun full = run_journaled(config, path, nullptr);

  const JournalRecovery rec = recover_journal(path, /*repair=*/false);
  std::size_t first_done = 0;
  for (std::size_t i = 0; i < rec.payloads.size(); ++i) {
    if (rec.payloads[i].find("\"type\":\"cell_done\"") != std::string::npos) {
      first_done = i;
      break;
    }
  }
  ASSERT_GT(first_done, 0u);

  const std::string cut_path = journal_tmp("restored-cut.journal");
  {
    JournalWriter writer(cut_path);
    for (std::size_t i = 0; i <= first_done; ++i) {
      writer.append(rec.payloads[i]);
    }
    writer.sync();
  }
  const JournalResume resume =
      parse_journal(recover_journal(cut_path, true).payloads);
  ASSERT_EQ(resume.completed.size(), 1u);
  EXPECT_TRUE(resume.partial.empty());  // cut is a clean cell boundary

  const JournaledRun resumed = run_journaled(config, cut_path, &resume);
  EXPECT_EQ(resumed.report_json, full.report_json);
  EXPECT_EQ(resumed.replayed, 0);
  const i64 restored =
      resume.completed.at(resume.completion_order.front())
          .result.result.experiments;
  EXPECT_EQ(resumed.live, total_experiments(full.result) - restored);
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// Subsystem-scoped sharing resumes too (deterministic execution): the pool
// restore in completion order plus stats reconciliation keeps cross-worker
// attribution byte-identical.
TEST(CampaignJournalTest, SubsystemShareDeterministicResumeIsByteIdentical) {
  CampaignConfig config = journaled_campaign_config();
  config.share = ShareScope::kSubsystem;
  const std::string path = journal_tmp("subsys.journal");
  const JournaledRun full = run_journaled(config, path, nullptr);

  const std::string bytes = slurp(path);
  const std::string cut_path = journal_tmp("subsys-cut.journal");
  spit(cut_path, bytes.substr(0, bytes.size() / 2));
  const JournalResume resume =
      parse_journal(recover_journal(cut_path, true).payloads);
  ASSERT_TRUE(resume.has_begin);
  const JournaledRun resumed = run_journaled(config, cut_path, &resume);
  EXPECT_EQ(resumed.report_json, full.report_json);
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
  std::remove((cut_path + ".torn").c_str());
}

// Guard rails: the splice backend is a trace-kind substrate, so threaded
// execution under subsystem sharing is rejected (resume's byte-identity
// needs schedule-independent trajectories), and a journal recorded against
// a different plan fails loudly instead of resuming wrong.
TEST(CampaignJournalTest, ResumeGuardsRejectUnsoundConfigurations) {
  const std::string path = journal_tmp("guards.journal");
  CampaignJournal journal(path, 4);
  auto splice =
      std::make_shared<SpliceBackendFactory>(nullptr, nullptr, &journal);

  CampaignConfig threaded = journaled_campaign_config();
  threaded.share = ShareScope::kSubsystem;
  threaded.execution = ExecutionMode::kThreads;
  threaded.backend_factory = splice;
  EXPECT_THROW(Campaign{threaded}, std::invalid_argument);

  // Record a 4-cell journal, then try to resume a 6-cell campaign from it.
  const CampaignConfig config = journaled_campaign_config();
  const std::string rec_path = journal_tmp("guards-rec.journal");
  (void)run_journaled(config, rec_path, nullptr);
  const JournalResume resume =
      parse_journal(recover_journal(rec_path, false).payloads);
  ASSERT_FALSE(resume.completed.empty());
  CampaignConfig drifted = config;
  drifted.seeds_per_cell = 3;
  EXPECT_THROW((void)run_journaled(drifted, rec_path, &resume),
               std::invalid_argument);
  std::remove(path.c_str());
  std::remove(rec_path.c_str());
}

}  // namespace
}  // namespace collie::orchestrator
