#include <gtest/gtest.h>

#include "core/monitor.h"

namespace collie::core {
namespace {

workload::Measurement measurement(double pause, double wire_util,
                                  double pps_util) {
  workload::Measurement m;
  m.pause_duration_ratio = pause;
  m.wire_utilization = wire_util;
  m.pps_utilization = pps_util;
  return m;
}

TEST(Monitor, HealthyWireBound) {
  AnomalyMonitor mon;
  const Verdict v = mon.judge(measurement(0.0, 0.98, 0.1));
  EXPECT_FALSE(v.anomalous());
  EXPECT_EQ(v.symptom, Symptom::kNone);
}

TEST(Monitor, HealthyPpsBound) {
  AnomalyMonitor mon;
  // Tiny messages: far from the bits/s bound but at the packets/s bound.
  EXPECT_FALSE(mon.judge(measurement(0.0, 0.3, 0.95)).anomalous());
}

TEST(Monitor, PauseAnomaly) {
  AnomalyMonitor mon;
  const Verdict v = mon.judge(measurement(0.01, 0.99, 0.5));
  EXPECT_EQ(v.symptom, Symptom::kPauseFrames);
}

TEST(Monitor, SetupBlipsTolerated) {
  // Threshold is above zero because "RNIC may generate a few pause frames
  // when ... connections are just set up" (§5.2).
  AnomalyMonitor mon;
  EXPECT_FALSE(mon.judge(measurement(0.0005, 0.99, 0.5)).anomalous());
  EXPECT_TRUE(mon.judge(measurement(0.002, 0.99, 0.5)).anomalous());
}

TEST(Monitor, LowThroughputAnomaly) {
  AnomalyMonitor mon;
  const Verdict v = mon.judge(measurement(0.0, 0.5, 0.4));
  EXPECT_EQ(v.symptom, Symptom::kLowThroughput);
}

TEST(Monitor, PauseTakesPrecedence) {
  AnomalyMonitor mon;
  const Verdict v = mon.judge(measurement(0.3, 0.2, 0.1));
  EXPECT_EQ(v.symptom, Symptom::kPauseFrames);
}

TEST(Monitor, ThresholdsConfigurable) {
  MonitorConfig cfg;
  cfg.util_threshold = 0.5;
  AnomalyMonitor mon(cfg);
  EXPECT_FALSE(mon.judge(measurement(0.0, 0.6, 0.0)).anomalous());
  EXPECT_TRUE(mon.judge(measurement(0.0, 0.4, 0.1)).anomalous());
}

TEST(Monitor, FabricExplainedPauseIsDiscounted) {
  AnomalyMonitor mon;
  // A 4:1 fan-in explains a 75% pause duty: that much (plus a small jitter
  // margin) is expected congestion, not a subsystem anomaly.
  workload::Measurement m = measurement(0.7505, 0.9, 0.1);
  m.fabric_pause_ratio = 0.75;
  EXPECT_FALSE(mon.judge(m).anomalous());

  // But a subsystem stall riding on top of the congested fabric still must
  // surface — the allowance is a margin on the fabric share, not a
  // multiplier that swallows the whole duty cycle.
  m.pause_duration_ratio = 0.773;
  EXPECT_EQ(mon.judge(m).symptom, Symptom::kPauseFrames);

  // Zero fabric share reproduces the seed thresholds exactly.
  workload::Measurement clean = measurement(0.002, 0.99, 0.5);
  EXPECT_EQ(mon.judge(clean).symptom, Symptom::kPauseFrames);
  clean.pause_duration_ratio = 0.0005;
  EXPECT_FALSE(mon.judge(clean).anomalous());
}

}  // namespace
}  // namespace collie::core
