#include <gtest/gtest.h>

#include <cmath>

#include "baseline/bo.h"
#include "baseline/gp.h"
#include "baseline/linalg.h"
#include "sim/subsystem.h"

namespace collie::baseline {
namespace {

TEST(Linalg, CholeskyOfKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  Matrix l;
  ASSERT_TRUE(cholesky(a, &l));
  EXPECT_NEAR(l.at(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l.at(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l.at(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 5;
  a.at(1, 0) = 5;
  a.at(1, 1) = 1;
  Matrix l;
  EXPECT_FALSE(cholesky(a, &l));
}

TEST(Linalg, SolveRoundTrip) {
  Matrix a(3, 3);
  // SPD matrix: diag-dominant.
  const double vals[3][3] = {{5, 1, 0.5}, {1, 4, 1}, {0.5, 1, 3}};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a.at(i, j) = vals[i][j];
  }
  Matrix l;
  ASSERT_TRUE(cholesky(a, &l));
  const std::vector<double> x_true{1.0, -2.0, 0.5};
  std::vector<double> b(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      b[static_cast<std::size_t>(i)] +=
          vals[i][j] * x_true[static_cast<std::size_t>(j)];
    }
  }
  const std::vector<double> x = cholesky_solve(l, b);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(Gp, InterpolatesTrainingData) {
  GaussianProcess gp;
  std::vector<std::vector<double>> xs{{0.1}, {0.5}, {0.9}};
  std::vector<double> ys{1.0, 3.0, 2.0};
  ASSERT_TRUE(gp.fit(xs, ys));
  double mu = 0.0;
  double sigma = 0.0;
  gp.predict({0.5}, &mu, &sigma);
  EXPECT_NEAR(mu, 3.0, 0.3);
  // Uncertainty is low at a training point and higher far away.
  double sigma_far = 0.0;
  double mu_far = 0.0;
  gp.predict({5.0}, &mu_far, &sigma_far);
  EXPECT_GT(sigma_far, sigma);
}

TEST(Gp, PredictsPriorWhenUnfitted) {
  GaussianProcess gp;
  double mu = 1.0;
  double sigma = 0.0;
  gp.predict({0.3}, &mu, &sigma);
  EXPECT_DOUBLE_EQ(mu, 0.0);
}

TEST(Gp, ExpectedImprovementProperties) {
  // Higher mean -> higher EI; zero stddev -> max(0, mean - best).
  EXPECT_GT(expected_improvement(2.0, 0.5, 1.0),
            expected_improvement(1.0, 0.5, 1.0));
  EXPECT_DOUBLE_EQ(expected_improvement(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_improvement(0.5, 0.0, 1.0), 0.0);
  // More uncertainty -> more EI when mean is below best.
  EXPECT_GT(expected_improvement(0.5, 1.0, 1.0),
            expected_improvement(0.5, 0.1, 1.0));
}

TEST(Bo, EncodingIsNormalized) {
  core::SearchSpace space(sim::subsystem('F'));
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Workload w = space.random_point(rng);
    const auto x = encode_workload(space, w);
    EXPECT_GT(x.size(), 10u);
    for (double v : x) {
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
    }
  }
}

// Regression for the no-op guidance path: the seed's BO produced runs
// byte-identical to plain random search at short budgets (subsystem F,
// 90-150 sim-minutes) because the per-phase random re-seeding plus MFS
// extraction consumed every phase deadline before a single EI-selected
// candidate reached the engine.
TEST(Bo, DivergesFromRandomAtShortBudgets) {
  workload::EngineOptions opts;
  opts.run_functional_pass = false;
  const sim::Subsystem& sys = sim::subsystem('F');
  workload::Engine engine(sys, opts);
  core::SearchSpace space(sys);
  core::SearchDriver driver(engine, space);
  core::SearchBudget budget;
  budget.seconds = 90 * 60.0;

  for (const u64 seed : {u64{3}, u64{7}}) {
    Rng rng_random(seed);
    const core::SearchResult random = driver.run_random(budget, rng_random);
    Rng rng_bo(seed);
    const core::SearchResult bo = run_bayesian_optimization(
        engine, space, core::AnomalyMonitor{}, BoConfig{}, budget, rng_bo);

    // The guided search must consult its surrogate: EI-skipped candidates
    // show up as MatchMFS hits random search cannot produce this way.
    EXPECT_GT(bo.mfs_skips, 0) << "seed " << seed;
    // And the measured experiment sequence must differ from random's.
    const bool same_shape = bo.experiments == random.experiments &&
                            bo.trace.size() == random.trace.size() &&
                            bo.elapsed_seconds == random.elapsed_seconds;
    EXPECT_FALSE(same_shape) << "seed " << seed
                             << ": bo is byte-identical to random";
  }
}

// Figure 4's premise: MFS-enhanced BO is at parity or better with random
// input generation on discoveries per budget.  Aggregated over seeds so a
// single lucky random run cannot flip the comparison.
TEST(Bo, ParityOrBetterDiscoveriesPerBudget) {
  workload::EngineOptions opts;
  opts.run_functional_pass = false;
  const sim::Subsystem& sys = sim::subsystem('F');
  workload::Engine engine(sys, opts);
  core::SearchSpace space(sys);
  core::SearchDriver driver(engine, space);
  core::SearchBudget budget;
  budget.seconds = 120 * 60.0;

  std::size_t random_found = 0;
  std::size_t bo_found = 0;
  for (const u64 seed : {u64{1}, u64{2}, u64{3}}) {
    Rng rng_random(seed);
    random_found += driver.run_random(budget, rng_random).found.size();
    Rng rng_bo(seed);
    bo_found += run_bayesian_optimization(engine, space,
                                          core::AnomalyMonitor{}, BoConfig{},
                                          budget, rng_bo)
                    .found.size();
  }
  EXPECT_GE(bo_found, random_found);
  EXPECT_GT(bo_found, 0u);
}

TEST(Bo, RunsWithinBudget) {
  workload::EngineOptions opts;
  opts.run_functional_pass = false;
  workload::Engine engine(sim::subsystem('F'), opts);
  core::SearchSpace space(sim::subsystem('F'));
  core::SearchBudget budget;
  budget.seconds = 45 * 60.0;
  BoConfig cfg;
  Rng rng(1);
  const core::SearchResult r = run_bayesian_optimization(
      engine, space, core::AnomalyMonitor{}, cfg, budget, rng);
  EXPECT_GT(r.experiments, 10);
  EXPECT_GE(r.elapsed_seconds, budget.seconds * 0.9);
}

}  // namespace
}  // namespace collie::baseline
