#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "catalog/anomalies.h"
#include "obs/telemetry.h"
#include "orchestrator/campaign.h"
#include "orchestrator/campaign_report.h"
#include "workload/backend_mock.h"
#include "workload/backend_sim.h"
#include "workload/backend_trace.h"
#include "workload/engine.h"

namespace collie::workload {
namespace {

Workload simple_write() {
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 4;
  w.wqe_batch = 4;
  w.mr_size = 256 * KiB;
  w.pattern = {64 * KiB};
  return w;
}

TEST(Engine, FunctionalPassAcceptsCleanWorkloads) {
  Engine engine(sim::subsystem('F'));
  std::string err;
  EXPECT_TRUE(engine.validate_functional(simple_write(), &err)) << err;

  Workload send = simple_write();
  send.opcode = Opcode::kSend;
  EXPECT_TRUE(engine.validate_functional(send, &err)) << err;

  Workload read = simple_write();
  read.opcode = Opcode::kRead;
  EXPECT_TRUE(engine.validate_functional(read, &err)) << err;

  Workload ud = simple_write();
  ud.qp_type = QpType::kUD;
  ud.opcode = Opcode::kSend;
  ud.mtu = 2048;
  ud.pattern = {2048};
  EXPECT_TRUE(engine.validate_functional(ud, &err)) << err;
}

TEST(Engine, FunctionalPassAcceptsEveryConcreteAnomalySetting) {
  // The 18 Appendix-A settings must all be expressible as legal verbs
  // programs — they ran on real hardware.
  for (const auto& a : catalog::all_anomalies()) {
    Engine engine(sim::subsystem(a.primary_subsystem));
    std::string err;
    EXPECT_TRUE(engine.validate_functional(a.concrete, &err))
        << "anomaly #" << a.id << ": " << err;
  }
}

TEST(Engine, FunctionalPassRejectsInvalidWorkloads) {
  Engine engine(sim::subsystem('F'));
  std::string err;
  Workload bad = simple_write();
  bad.qp_type = QpType::kUD;  // UD WRITE is illegal
  EXPECT_FALSE(engine.validate_functional(bad, &err));
  EXPECT_NE(err.find("invalid workload"), std::string::npos);
}

TEST(Engine, MeasurementShape) {
  Engine engine(sim::subsystem('F'));
  Rng rng(11);
  const Measurement m = engine.run(simple_write(), rng);
  // Four counter fetches per iteration (§6).
  EXPECT_EQ(m.samples.size(), 4u);
  EXPECT_TRUE(m.stable);
  EXPECT_GE(m.cost_seconds, 20.0);
  EXPECT_LE(m.cost_seconds, 70.0);
  EXPECT_GT(m.rx_goodput_bps, gbps(150));
  EXPECT_GT(m.average.get(sim::PerfCounter::kTxGoodputBps), 0.0);
}

TEST(Engine, CostScalesWithSetupWork) {
  Engine engine(sim::subsystem('F'));
  Rng rng(11);
  Workload small = simple_write();
  Workload big = simple_write();
  big.num_qps = 15000;
  const double cost_small = engine.run(small, rng).cost_seconds;
  const double cost_big = engine.run(big, rng).cost_seconds;
  EXPECT_GT(cost_big, cost_small + 10.0);
}

TEST(Engine, AnomalousWorkloadMeasuresAnomalous) {
  Engine engine(sim::subsystem('F'));
  Rng rng(11);
  const Measurement m = engine.run(catalog::anomaly(1).concrete, rng);
  EXPECT_GT(m.pause_duration_ratio, 0.001);
  EXPECT_EQ(m.dominant, sim::Bottleneck::kRwqeBurstMiss);
}

TEST(Engine, FunctionalPassCanBeDisabled) {
  EngineOptions opts;
  opts.run_functional_pass = false;
  Engine engine(sim::subsystem('F'), opts);
  Rng rng(1);
  const Measurement m = engine.run(simple_write(), rng);
  EXPECT_GT(m.rx_goodput_bps, 0.0);
}

// ---- execution backends -----------------------------------------------------

TEST(Backend, SimBackendIsTheDefault) {
  Engine engine(sim::subsystem('F'));
  EXPECT_EQ(engine.backend().kind(), BackendKind::kSim);
  EXPECT_EQ(engine.backend().substrate(), "sim");
}

// A small deterministic campaign template every backend test shares: one
// subsystem-B cell, cell-scoped pool, deterministic execution — the shape
// trace record/replay requires.
orchestrator::CampaignConfig small_campaign() {
  orchestrator::CampaignConfig config;
  config.subsystems = {'B'};
  config.workers = 2;
  config.share = orchestrator::ShareScope::kCell;
  config.execution = orchestrator::ExecutionMode::kDeterministic;
  config.budget.seconds = 900.0;
  config.engine.run_functional_pass = false;
  return config;
}

TEST(Backend, RecordReplayCampaignReportsAreByteIdentical) {
  // Leg 0: the plain simulator.
  const std::string sim_report =
      orchestrator::build_report(
          orchestrator::Campaign(small_campaign()).run())
          .to_json();

  // Leg 1: record.  Same trajectory as the plain simulator, same report.
  auto recorder = std::make_shared<TraceRecorder>();
  orchestrator::CampaignConfig record = small_campaign();
  record.backend_factory = std::make_shared<RecordBackendFactory>(recorder);
  const orchestrator::CampaignResult record_result =
      orchestrator::Campaign(record).run();
  const std::string record_report =
      orchestrator::build_report(record_result).to_json();
  EXPECT_EQ(record_report, sim_report);
  EXPECT_EQ(record_result.backend, "sim");

  // Leg 2: replay through the serialized trace, telemetry on so the
  // zero-evaluation claim is observable.  The report must still match byte
  // for byte — substrate attribution, not transport.
  auto trace = std::make_shared<const TraceFile>(
      TraceFile::from_json(recorder->to_json()));
  obs::Telemetry telemetry;
  orchestrator::CampaignConfig replay = small_campaign();
  replay.backend_factory = std::make_shared<ReplayBackendFactory>(trace);
  replay.telemetry = &telemetry;
  const orchestrator::CampaignResult replay_result =
      orchestrator::Campaign(replay).run();
  EXPECT_EQ(orchestrator::build_report(replay_result).to_json(), sim_report);

  // Not a single simulator evaluation ran on the replay leg, and every
  // probe went through the trace backend.
  const obs::Snapshot snap = telemetry.snapshot();
  ASSERT_TRUE(snap.histograms.count("engine.eval_ns"));
  EXPECT_EQ(snap.histograms.at("engine.eval_ns").count, 0u);
  i64 experiments = 0;
  for (const orchestrator::CellResult& cr : replay_result.cells) {
    experiments += cr.result.experiments;
  }
  EXPECT_GT(experiments, 0);
  ASSERT_TRUE(snap.counters.count("engine.backend.trace"));
  EXPECT_EQ(snap.counters.at("engine.backend.trace"), experiments);
}

TEST(Backend, ReplayDivergenceFailsLoudly) {
  // Record two probes through one engine.
  auto recorder = std::make_shared<TraceRecorder>();
  RecordBackendFactory factory(recorder);
  EngineOptions opts;
  opts.run_functional_pass = false;
  opts.backend_factory = &factory;
  opts.backend_context = "cell";
  const sim::Subsystem& sys = sim::subsystem('F');
  {
    Engine engine(sys, opts);
    Rng rng(3);
    engine.run(simple_write(), rng);
    engine.run(catalog::anomaly(1).concrete, rng);
  }
  auto trace =
      std::make_shared<const TraceFile>(recorder->file());

  // A missing context fails at engine construction.
  ReplayBackendFactory replay(trace);
  EngineOptions bad_ctx = opts;
  bad_ctx.backend_factory = &replay;
  bad_ctx.backend_context = "other-cell";
  EXPECT_THROW(Engine(sys, bad_ctx), std::runtime_error);

  // A different workload at the cursor fails at that probe.
  EngineOptions replay_opts = opts;
  replay_opts.backend_factory = &replay;
  {
    Engine engine(sys, replay_opts);
    Rng rng(3);
    Workload other = simple_write();
    other.num_qps = 99;
    EXPECT_THROW(engine.run(other, rng), std::runtime_error);
  }
  // Running past the recorded sequence fails too.
  {
    Engine engine(sys, replay_opts);
    Rng rng(3);
    engine.run(simple_write(), rng);
    engine.run(catalog::anomaly(1).concrete, rng);
    EXPECT_THROW(engine.run(simple_write(), rng), std::runtime_error);
  }
}

TEST(Backend, ReplayRestoresTheRecordedRngStream) {
  // The same generator feeds measurement jitter and search decisions, so a
  // replayed probe must leave the Rng exactly where the recording left it.
  auto recorder = std::make_shared<TraceRecorder>();
  RecordBackendFactory factory(recorder);
  EngineOptions opts;
  opts.run_functional_pass = false;
  opts.backend_factory = &factory;
  const sim::Subsystem& sys = sim::subsystem('F');
  Rng record_rng(17);
  {
    Engine engine(sys, opts);
    engine.run(simple_write(), record_rng);
  }
  const RngState after_record = record_rng.state();

  auto trace = std::make_shared<const TraceFile>(recorder->file());
  ReplayBackendFactory replay_factory(trace);
  EngineOptions replay_opts = opts;
  replay_opts.backend_factory = &replay_factory;
  Engine engine(sys, replay_opts);
  Rng replay_rng(17);
  engine.run(simple_write(), replay_rng);
  EXPECT_EQ(replay_rng.state(), after_record);
  // And the next draws agree.
  EXPECT_EQ(record_rng.next_u64(), replay_rng.next_u64());
}

TEST(Backend, MockBackendDrivesACampaign) {
  // A scripted healthy fleet: full line rate, no pauses.  The search finds
  // nothing, the report attributes the mock substrate, and the probe count
  // matches the campaign's experiment count (cost accounting — which the
  // responder must not reset — drove the budget to exhaustion).
  auto factory = std::make_shared<MockBackendFactory>(
      [](const Workload&, Measurement& out) {
        script_measurement(out, gbps(195));
      });
  orchestrator::CampaignConfig config = small_campaign();
  config.backend_factory = factory;
  const orchestrator::CampaignResult result =
      orchestrator::Campaign(config).run();
  const orchestrator::CampaignReport report =
      orchestrator::build_report(result);
  EXPECT_EQ(report.backend, "mock");
  EXPECT_EQ(report.anomalies.size(), 0u);
  EXPECT_GT(report.total_experiments, 0);
  EXPECT_EQ(factory->total_probes(),
            static_cast<i64>(report.total_experiments));
  // The report round-trips with the substrate label intact.
  EXPECT_EQ(
      orchestrator::campaign_report_from_json(report.to_json()).backend,
      "mock");
}

}  // namespace
}  // namespace collie::workload
