#include <gtest/gtest.h>

#include "catalog/anomalies.h"
#include "workload/engine.h"

namespace collie::workload {
namespace {

Workload simple_write() {
  Workload w;
  w.qp_type = QpType::kRC;
  w.opcode = Opcode::kWrite;
  w.num_qps = 4;
  w.wqe_batch = 4;
  w.mr_size = 256 * KiB;
  w.pattern = {64 * KiB};
  return w;
}

TEST(Engine, FunctionalPassAcceptsCleanWorkloads) {
  Engine engine(sim::subsystem('F'));
  std::string err;
  EXPECT_TRUE(engine.validate_functional(simple_write(), &err)) << err;

  Workload send = simple_write();
  send.opcode = Opcode::kSend;
  EXPECT_TRUE(engine.validate_functional(send, &err)) << err;

  Workload read = simple_write();
  read.opcode = Opcode::kRead;
  EXPECT_TRUE(engine.validate_functional(read, &err)) << err;

  Workload ud = simple_write();
  ud.qp_type = QpType::kUD;
  ud.opcode = Opcode::kSend;
  ud.mtu = 2048;
  ud.pattern = {2048};
  EXPECT_TRUE(engine.validate_functional(ud, &err)) << err;
}

TEST(Engine, FunctionalPassAcceptsEveryConcreteAnomalySetting) {
  // The 18 Appendix-A settings must all be expressible as legal verbs
  // programs — they ran on real hardware.
  for (const auto& a : catalog::all_anomalies()) {
    Engine engine(sim::subsystem(a.primary_subsystem));
    std::string err;
    EXPECT_TRUE(engine.validate_functional(a.concrete, &err))
        << "anomaly #" << a.id << ": " << err;
  }
}

TEST(Engine, FunctionalPassRejectsInvalidWorkloads) {
  Engine engine(sim::subsystem('F'));
  std::string err;
  Workload bad = simple_write();
  bad.qp_type = QpType::kUD;  // UD WRITE is illegal
  EXPECT_FALSE(engine.validate_functional(bad, &err));
  EXPECT_NE(err.find("invalid workload"), std::string::npos);
}

TEST(Engine, MeasurementShape) {
  Engine engine(sim::subsystem('F'));
  Rng rng(11);
  const Measurement m = engine.run(simple_write(), rng);
  // Four counter fetches per iteration (§6).
  EXPECT_EQ(m.samples.size(), 4u);
  EXPECT_TRUE(m.stable);
  EXPECT_GE(m.cost_seconds, 20.0);
  EXPECT_LE(m.cost_seconds, 70.0);
  EXPECT_GT(m.rx_goodput_bps, gbps(150));
  EXPECT_GT(m.average.get(sim::PerfCounter::kTxGoodputBps), 0.0);
}

TEST(Engine, CostScalesWithSetupWork) {
  Engine engine(sim::subsystem('F'));
  Rng rng(11);
  Workload small = simple_write();
  Workload big = simple_write();
  big.num_qps = 15000;
  const double cost_small = engine.run(small, rng).cost_seconds;
  const double cost_big = engine.run(big, rng).cost_seconds;
  EXPECT_GT(cost_big, cost_small + 10.0);
}

TEST(Engine, AnomalousWorkloadMeasuresAnomalous) {
  Engine engine(sim::subsystem('F'));
  Rng rng(11);
  const Measurement m = engine.run(catalog::anomaly(1).concrete, rng);
  EXPECT_GT(m.pause_duration_ratio, 0.001);
  EXPECT_EQ(m.dominant, sim::Bottleneck::kRwqeBurstMiss);
}

TEST(Engine, FunctionalPassCanBeDisabled) {
  EngineOptions opts;
  opts.run_functional_pass = false;
  Engine engine(sim::subsystem('F'), opts);
  Rng rng(1);
  const Measurement m = engine.run(simple_write(), rng);
  EXPECT_GT(m.rx_goodput_bps, 0.0);
}

}  // namespace
}  // namespace collie::workload
