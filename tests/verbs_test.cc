#include <gtest/gtest.h>

#include <numeric>

#include "verbs/verbs.h"

namespace collie::verbs {
namespace {

class VerbsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = net_.add_host();
    b_ = net_.add_host();
    pd_a_ = a_->alloc_pd();
    pd_b_ = b_->alloc_pd();
    cq_a_ = a_->create_cq(1024);
    cq_b_ = b_->create_cq(1024);
    buf_a_.assign(64 * KiB, 0);
    buf_b_.assign(64 * KiB, 0);
    mr_a_ = a_->reg_mr(pd_a_, buf_a_.data(), buf_a_.size(),
                       kLocalWrite | kRemoteWrite | kRemoteRead);
    mr_b_ = b_->reg_mr(pd_b_, buf_b_.data(), buf_b_.size(),
                       kLocalWrite | kRemoteWrite | kRemoteRead);
    ASSERT_NE(mr_a_, nullptr);
    ASSERT_NE(mr_b_, nullptr);
  }

  std::pair<Qp*, Qp*> connected_pair(QpType type = QpType::kRC,
                                     QpCap cap = {}) {
    Qp* qa = a_->create_qp(pd_a_, cq_a_, cq_a_, type, cap);
    Qp* qb = b_->create_qp(pd_b_, cq_b_, cq_b_, type, cap);
    EXPECT_TRUE(connect_pair(qa, qb, 4096));
    return {qa, qb};
  }

  Network net_;
  Context* a_ = nullptr;
  Context* b_ = nullptr;
  Pd* pd_a_ = nullptr;
  Pd* pd_b_ = nullptr;
  Cq* cq_a_ = nullptr;
  Cq* cq_b_ = nullptr;
  std::vector<u8> buf_a_;
  std::vector<u8> buf_b_;
  Mr* mr_a_ = nullptr;
  Mr* mr_b_ = nullptr;
};

TEST_F(VerbsTest, RegMrValidation) {
  EXPECT_EQ(a_->reg_mr(nullptr, buf_a_.data(), 64, kLocalWrite), nullptr);
  EXPECT_EQ(a_->reg_mr(pd_a_, nullptr, 64, kLocalWrite), nullptr);
  EXPECT_EQ(a_->reg_mr(pd_a_, buf_a_.data(), 0, kLocalWrite), nullptr);
  Mr* mr = a_->reg_mr(pd_a_, buf_a_.data(), 64, kLocalWrite);
  ASSERT_NE(mr, nullptr);
  EXPECT_NE(mr->lkey(), mr->rkey());
  EXPECT_TRUE(mr->contains(mr->addr(), 64));
  EXPECT_FALSE(mr->contains(mr->addr(), 65));
  EXPECT_FALSE(mr->contains(mr->addr() - 1, 4));
}

TEST_F(VerbsTest, QpStateMachine) {
  Qp* qp = a_->create_qp(pd_a_, cq_a_, cq_a_, QpType::kRC, QpCap{});
  ASSERT_NE(qp, nullptr);
  EXPECT_EQ(qp->state(), QpState::kReset);

  // RESET -> RTS directly is illegal.
  QpAttr attr;
  attr.state = QpState::kRts;
  EXPECT_FALSE(qp->modify(attr));
  EXPECT_EQ(qp->state(), QpState::kReset);

  attr.state = QpState::kInit;
  EXPECT_TRUE(qp->modify(attr));
  attr.state = QpState::kRtr;
  EXPECT_TRUE(qp->modify(attr));
  attr.state = QpState::kRts;
  EXPECT_TRUE(qp->modify(attr));

  // Post-send requires RTS; after reset it must fail again.
  attr.state = QpState::kReset;
  EXPECT_TRUE(qp->modify(attr));
  std::string err;
  EXPECT_FALSE(qp->post_send({SendWr{}}, &err));
  EXPECT_EQ(err, "QP not in RTS");
}

TEST_F(VerbsTest, PostSendValidatesCaps) {
  QpCap cap;
  cap.max_send_wr = 4;
  cap.max_send_sge = 2;
  auto [qa, qb] = connected_pair(QpType::kRC, cap);
  (void)qb;
  std::string err;

  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  wr.remote_addr = mr_b_->addr();
  wr.rkey = mr_b_->rkey();
  wr.sg_list = {{mr_a_->addr(), 16, mr_a_->lkey()},
                {mr_a_->addr(), 16, mr_a_->lkey()},
                {mr_a_->addr(), 16, mr_a_->lkey()}};
  EXPECT_FALSE(qa->post_send({wr}, &err));  // 3 SGEs > cap 2

  wr.sg_list.resize(2);
  EXPECT_TRUE(qa->post_send({wr, wr, wr, wr}, &err)) << err;
  EXPECT_FALSE(qa->post_send({wr}, &err));  // queue full
  EXPECT_EQ(err, "send queue overflow");
}

TEST_F(VerbsTest, UdRestrictions) {
  QpCap cap;
  Qp* qp = a_->create_qp(pd_a_, cq_a_, cq_a_, QpType::kUD, cap);
  QpAttr attr;
  attr.state = QpState::kInit;
  ASSERT_TRUE(qp->modify(attr));
  attr.state = QpState::kRtr;
  ASSERT_TRUE(qp->modify(attr));
  attr.state = QpState::kRts;
  ASSERT_TRUE(qp->modify(attr));

  std::string err;
  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  EXPECT_FALSE(qp->post_send({wr}, &err));
  EXPECT_EQ(err, "UD supports only SEND");
}

TEST_F(VerbsTest, ReadRequiresRc) {
  auto [qa, qb] = connected_pair(QpType::kUC);
  (void)qb;
  std::string err;
  SendWr wr;
  wr.opcode = WrOpcode::kRead;
  wr.sg_list = {{mr_a_->addr(), 16, mr_a_->lkey()}};
  EXPECT_FALSE(qa->post_send({wr}, &err));
  EXPECT_EQ(err, "READ requires RC");
}

TEST_F(VerbsTest, RdmaWriteMovesBytes) {
  auto [qa, qb] = connected_pair();
  (void)qb;
  std::iota(buf_a_.begin(), buf_a_.begin() + 256, u8{1});

  SendWr wr;
  wr.wr_id = 42;
  wr.opcode = WrOpcode::kWrite;
  wr.remote_addr = mr_b_->addr() + 1024;
  wr.rkey = mr_b_->rkey();
  wr.sg_list = {{mr_a_->addr(), 256, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  EXPECT_EQ(net_.progress(), 1);

  Wc wc;
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.wr_id, 42u);
  EXPECT_EQ(wc.byte_len, 256u);
  EXPECT_EQ(wc.opcode, WcOpcode::kWrite);
  EXPECT_EQ(std::memcmp(buf_b_.data() + 1024, buf_a_.data(), 256), 0);
}

TEST_F(VerbsTest, RdmaReadPullsBytes) {
  auto [qa, qb] = connected_pair();
  (void)qb;
  for (int i = 0; i < 512; ++i) buf_b_[static_cast<std::size_t>(i)] = 7;

  SendWr wr;
  wr.opcode = WrOpcode::kRead;
  wr.remote_addr = mr_b_->addr();
  wr.rkey = mr_b_->rkey();
  wr.sg_list = {{mr_a_->addr() + 2048, 512, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();

  Wc wc;
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(buf_a_[2048], 7);
  EXPECT_EQ(buf_a_[2048 + 511], 7);
}

TEST_F(VerbsTest, SendRecvWithScatterGather) {
  auto [qa, qb] = connected_pair();
  RecvWr rwr;
  rwr.wr_id = 9;
  rwr.sg_list = {{mr_b_->addr(), 128, mr_b_->lkey()},
                 {mr_b_->addr() + 4096, 4096, mr_b_->lkey()}};
  ASSERT_TRUE(qb->post_recv({rwr}));

  std::iota(buf_a_.begin(), buf_a_.begin() + 300, u8{1});
  SendWr wr;
  wr.opcode = WrOpcode::kSend;
  wr.sg_list = {{mr_a_->addr(), 300, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();

  Wc wc;
  ASSERT_EQ(cq_b_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  EXPECT_EQ(wc.opcode, WcOpcode::kRecv);
  EXPECT_EQ(wc.wr_id, 9u);
  EXPECT_EQ(wc.byte_len, 300u);
  // First 128 bytes land in the first SGE, the rest spill into the second.
  EXPECT_EQ(std::memcmp(buf_b_.data(), buf_a_.data(), 128), 0);
  EXPECT_EQ(std::memcmp(buf_b_.data() + 4096, buf_a_.data() + 128, 172), 0);
}

TEST_F(VerbsTest, RnrWhenNoReceivePosted) {
  auto [qa, qb] = connected_pair();
  (void)qb;
  SendWr wr;
  wr.opcode = WrOpcode::kSend;
  wr.sg_list = {{mr_a_->addr(), 64, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  Wc wc;
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kRnrRetryExcErr);
}

TEST_F(VerbsTest, UdDropsWhenNoReceivePosted) {
  QpCap cap;
  Qp* qa = a_->create_qp(pd_a_, cq_a_, cq_a_, QpType::kUD, cap);
  Qp* qb = b_->create_qp(pd_b_, cq_b_, cq_b_, QpType::kUD, cap);
  for (Qp* qp : {qa, qb}) {
    QpAttr attr;
    attr.mtu = 2048;
    attr.state = QpState::kInit;
    ASSERT_TRUE(qp->modify(attr));
    attr.state = QpState::kRtr;
    ASSERT_TRUE(qp->modify(attr));
    attr.state = QpState::kRts;
    ASSERT_TRUE(qp->modify(attr));
  }
  SendWr wr;
  wr.opcode = WrOpcode::kSend;
  wr.remote_qpn = qb->qp_num();
  wr.sg_list = {{mr_a_->addr(), 64, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  Wc wc;
  // Sender still completes successfully (fire-and-forget datagram)...
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
  // ...but nothing arrives.
  EXPECT_EQ(cq_b_->poll(&wc, 1), 0);
}

TEST_F(VerbsTest, RemoteAccessErrors) {
  auto [qa, qb] = connected_pair();
  (void)qb;
  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  wr.sg_list = {{mr_a_->addr(), 64, mr_a_->lkey()}};

  // Bad rkey.
  wr.remote_addr = mr_b_->addr();
  wr.rkey = 0xdead;
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  Wc wc;
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessErr);

  // Out-of-bounds remote address.
  wr.rkey = mr_b_->rkey();
  wr.remote_addr = mr_b_->addr() + mr_b_->length() - 8;
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessErr);
}

TEST_F(VerbsTest, PermissionEnforcement) {
  // MR without remote-write access rejects RDMA WRITE.
  std::vector<u8> guarded(4096, 0);
  Mr* ro = b_->reg_mr(pd_b_, guarded.data(), guarded.size(),
                      kLocalWrite | kRemoteRead);
  ASSERT_NE(ro, nullptr);
  auto [qa, qb] = connected_pair();
  (void)qb;
  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  wr.remote_addr = ro->addr();
  wr.rkey = ro->rkey();
  wr.sg_list = {{mr_a_->addr(), 64, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  Wc wc;
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessErr);
  // READ against the same MR succeeds.
  wr.opcode = WrOpcode::kRead;
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kSuccess);
}

TEST_F(VerbsTest, LocalProtectionError) {
  auto [qa, qb] = connected_pair();
  (void)qb;
  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  wr.remote_addr = mr_b_->addr();
  wr.rkey = mr_b_->rkey();
  wr.sg_list = {{mr_a_->addr(), 64, 0xbadbeef}};  // bad lkey
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  Wc wc;
  ASSERT_EQ(cq_a_->poll(&wc, 1), 1);
  EXPECT_EQ(wc.status, WcStatus::kLocalProtErr);
}

TEST_F(VerbsTest, UnsignaledSendsSkipCompletion) {
  auto [qa, qb] = connected_pair();
  (void)qb;
  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  wr.remote_addr = mr_b_->addr();
  wr.rkey = mr_b_->rkey();
  wr.signaled = false;
  wr.sg_list = {{mr_a_->addr(), 64, mr_a_->lkey()}};
  ASSERT_TRUE(qa->post_send({wr}));
  net_.progress();
  Wc wc;
  EXPECT_EQ(cq_a_->poll(&wc, 1), 0);
}

TEST_F(VerbsTest, ProgressRoundRobinsAcrossQps) {
  auto [q1a, q1b] = connected_pair();
  auto [q2a, q2b] = connected_pair();
  (void)q1b;
  (void)q2b;
  SendWr wr;
  wr.opcode = WrOpcode::kWrite;
  wr.remote_addr = mr_b_->addr();
  wr.rkey = mr_b_->rkey();
  wr.sg_list = {{mr_a_->addr(), 8, mr_a_->lkey()}};
  ASSERT_TRUE(q1a->post_send({wr, wr}));
  ASSERT_TRUE(q2a->post_send({wr}));
  EXPECT_EQ(net_.progress(), 3);
  Wc wc[8];
  EXPECT_EQ(cq_a_->poll(wc, 8), 3);
}

}  // namespace
}  // namespace collie::verbs
