// The durability layer's contract, fuzzed (same harness discipline as
// tests/persistence_test.cc):
//   * crc32 matches the IEEE check value and chains incrementally;
//   * atomic_write publishes whole documents or nothing;
//   * the collie-journal-v1 frame format round-trips through recovery, and
//     recovery is a truncation scan — EVERY byte prefix of a valid journal
//     recovers without error to a frame prefix of the original (the
//     structural invariant mid-cell resume is built on), targeted garbles
//     and random byte flips quarantine the damaged suffix instead of
//     trusting it, and a repaired journal accepts appends;
//   * parse_journal reconstructs resumable state from the two record
//     vocabularies and rejects unknown shapes loudly;
//   * DriverProgress / BoProgress survive their JSON round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/bo.h"
#include "common/durable_io.h"
#include "common/rng.h"
#include "core/json_reader.h"
#include "core/search.h"
#include "core/serialize.h"
#include "orchestrator/checkpoint.h"
#include "orchestrator/journal.h"
#include "orchestrator/scheduler.h"
#include "sim/subsystem.h"
#include "workload/backend_trace.h"

namespace collie::orchestrator {
namespace {

using core::JsonError;
using core::JsonValue;

std::string tmp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "collie_journal_test_" + name;
  std::remove(path.c_str());
  std::remove((path + ".torn").c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ---- crc32 ------------------------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckValueAndChains) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(durable_io::crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(durable_io::crc32(std::string("")), 0u);
  // Incremental chaining: crc32(b, crc32(a)) == crc32(a + b).
  const std::string a = "collie-jour";
  const std::string b = "nal-v1\n and some payload bytes \x00\x7f\x01";
  EXPECT_EQ(durable_io::crc32(b, durable_io::crc32(a)),
            durable_io::crc32(a + b));
  // Sensitivity: any single-byte change moves the checksum.
  std::string c = a + b;
  c[3] ^= 0x40;
  EXPECT_NE(durable_io::crc32(c), durable_io::crc32(a + b));
}

// ---- atomic_write -----------------------------------------------------------

TEST(AtomicWrite, PublishesWholeDocumentsAndReportsFailures) {
  const std::string path = tmp_path("atomic.json");
  EXPECT_TRUE(durable_io::atomic_write(path, "first document\n"));
  EXPECT_EQ(read_file(path), "first document\n");
  // Replacement is wholesale: no residue of the longer old content.
  EXPECT_TRUE(durable_io::atomic_write(path, "2nd\n"));
  EXPECT_EQ(read_file(path), "2nd\n");
  // No sibling temporary left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Failure is reported, not thrown, and the target is untouched.
  std::string error;
  EXPECT_FALSE(durable_io::atomic_write(
      "/nonexistent_collie_dir/impossible.json", "x", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(read_file(path), "2nd\n");
  std::remove(path.c_str());
}

// ---- journal frames ---------------------------------------------------------

std::vector<std::string> sample_payloads() {
  return {
      R"({"record":"begin","share":"cell"})",
      "",  // empty payloads are legal frames
      R"({"record":"probe","context":"B/Diag#0","n":1})",
      std::string(300, 'x'),
      R"({"record":"event","what":"lease"})",
  };
}

std::string build_journal(const std::string& path) {
  const std::vector<std::string> payloads = sample_payloads();
  JournalWriter writer(path);
  for (const std::string& p : payloads) writer.append(p);
  writer.sync();
  return read_file(path);
}

TEST(JournalFrames, WriterRoundTripsThroughRecovery) {
  const std::string path = tmp_path("roundtrip.journal");
  const std::string bytes = build_journal(path);
  ASSERT_GT(bytes.size(), kJournalMagicSize);
  EXPECT_EQ(bytes.substr(0, kJournalMagicSize), std::string(kJournalMagic));

  const JournalRecovery r = recover_journal(path, /*repair=*/false);
  EXPECT_TRUE(r.existed);
  EXPECT_FALSE(r.torn);
  EXPECT_TRUE(r.error.empty());
  EXPECT_EQ(r.valid_bytes, bytes.size());
  EXPECT_EQ(r.total_bytes, bytes.size());
  EXPECT_EQ(r.payloads, sample_payloads());

  // Re-opening an intact journal appends, never rewrites.
  {
    JournalWriter again(path);
    again.append("tail");
    again.sync();
  }
  const JournalRecovery r2 = recover_journal(path, /*repair=*/false);
  ASSERT_EQ(r2.payloads.size(), sample_payloads().size() + 1);
  EXPECT_EQ(r2.payloads.back(), "tail");

  // A journal that never existed is a clean fresh start, not an error.
  const JournalRecovery none =
      recover_journal(tmp_path("never-written.journal"), /*repair=*/false);
  EXPECT_FALSE(none.existed);
  EXPECT_FALSE(none.torn);
  EXPECT_TRUE(none.payloads.empty());
  std::remove(path.c_str());
}

// The structural invariant resume depends on: EVERY byte prefix of a valid
// journal recovers — without throwing — to a frame prefix of the original
// payload sequence, with valid_bytes never past the cut and the recovered
// frame count monotone in the prefix length.
TEST(JournalFrames, EveryBytePrefixRecoversToAFramePrefix) {
  const std::string path = tmp_path("prefix.journal");
  const std::string bytes = build_journal(path);
  const std::vector<std::string> full = sample_payloads();
  const std::string cut_path = tmp_path("prefix-cut.journal");

  std::size_t prev_frames = 0;
  for (std::size_t n = 0; n <= bytes.size(); ++n) {
    write_file(cut_path, bytes.substr(0, n));
    const JournalRecovery r = recover_journal(cut_path, /*repair=*/false);
    ASSERT_TRUE(r.existed) << "cut at " << n;
    ASSERT_TRUE(r.error.empty()) << "cut at " << n << ": " << r.error;
    ASSERT_EQ(r.total_bytes, n);
    ASSERT_LE(r.valid_bytes, n) << "cut at " << n;
    ASSERT_EQ(r.torn, r.valid_bytes < n) << "cut at " << n;
    ASSERT_LE(r.payloads.size(), full.size()) << "cut at " << n;
    for (std::size_t i = 0; i < r.payloads.size(); ++i) {
      ASSERT_EQ(r.payloads[i], full[i]) << "cut at " << n << ", frame " << i;
    }
    ASSERT_GE(r.payloads.size(), prev_frames)
        << "recovered frames regressed at cut " << n;
    prev_frames = r.payloads.size();
  }
  EXPECT_EQ(prev_frames, full.size());
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(JournalFrames, TargetedGarblesQuarantineTheSuffix) {
  const std::string path = tmp_path("garble.journal");
  const std::string bytes = build_journal(path);
  const std::vector<std::string> full = sample_payloads();
  // Frame layout: magic, then frame i at offset(i) with 8-byte header.
  std::vector<std::size_t> frame_off;
  {
    std::size_t off = kJournalMagicSize;
    for (const std::string& p : full) {
      frame_off.push_back(off);
      off += 8 + p.size();
    }
  }
  const std::string cut_path = tmp_path("garble-cut.journal");
  const auto recover_garbled = [&](std::size_t pos, char flip) {
    std::string g = bytes;
    g[pos] = static_cast<char>(g[pos] ^ flip);
    write_file(cut_path, g);
    return recover_journal(cut_path, /*repair=*/false);
  };

  // A flipped payload byte in frame 2 fails its CRC: frames 0-1 survive,
  // everything from frame 2 on is quarantined (truncation scan).
  {
    const JournalRecovery r = recover_garbled(frame_off[2] + 8 + 3, 0x20);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.valid_bytes, frame_off[2]);
    ASSERT_EQ(r.payloads.size(), 2u);
    EXPECT_EQ(r.payloads[1], full[1]);
  }
  // A flipped CRC byte: same outcome (the payload itself is intact but
  // cannot be trusted).
  {
    const JournalRecovery r = recover_garbled(frame_off[1] + 4, 0x01);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.valid_bytes, frame_off[1]);
    EXPECT_EQ(r.payloads.size(), 1u);
  }
  // A garbled length that claims more bytes than the file holds.
  {
    const JournalRecovery r = recover_garbled(frame_off[3] + 3, 0x7F);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.valid_bytes, frame_off[3]);
    EXPECT_EQ(r.payloads.size(), 3u);
  }
  // A damaged magic voids every frame: nothing can be trusted.
  {
    const JournalRecovery r = recover_garbled(5, 0x10);
    EXPECT_TRUE(r.torn);
    EXPECT_EQ(r.valid_bytes, 0u);
    EXPECT_TRUE(r.payloads.empty());
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(JournalFrames, RepairQuarantinesTornSuffixAndAcceptsAppends) {
  const std::string path = tmp_path("repair.journal");
  const std::string bytes = build_journal(path);
  // Tear mid-way through the last frame.
  const std::size_t cut = bytes.size() - 3;
  write_file(path, bytes.substr(0, cut));

  const JournalRecovery r = recover_journal(path, /*repair=*/true);
  EXPECT_TRUE(r.torn);
  EXPECT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.payloads.size(), sample_payloads().size() - 1);
  // The torn suffix is quarantined byte-for-byte, never silently dropped...
  EXPECT_EQ(r.torn_path, path + ".torn");
  EXPECT_EQ(read_file(r.torn_path), bytes.substr(r.valid_bytes, cut - r.valid_bytes));
  // ...and the journal itself is truncated to its valid prefix, ready for
  // appending (what a resumed campaign does).
  EXPECT_EQ(read_file(path).size(), r.valid_bytes);
  {
    JournalWriter writer(path);
    writer.append("appended-after-repair");
    writer.sync();
  }
  const JournalRecovery r2 = recover_journal(path, /*repair=*/false);
  EXPECT_FALSE(r2.torn);
  ASSERT_EQ(r2.payloads.size(), r.payloads.size() + 1);
  EXPECT_EQ(r2.payloads.back(), "appended-after-repair");
  std::remove(path.c_str());
  std::remove((path + ".torn").c_str());
}

TEST(JournalFrames, RandomByteFlipsNeverMisbehave) {
  const std::string path = tmp_path("fuzz.journal");
  const std::string bytes = build_journal(path);
  const std::vector<std::string> full = sample_payloads();
  const std::string cut_path = tmp_path("fuzz-cut.journal");
  Rng rng(53);
  for (int trial = 0; trial < 200; ++trial) {
    std::string g = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<i64>(bytes.size()) - 1));
    const auto flip = static_cast<char>(rng.uniform_int(1, 255));
    g[pos] = static_cast<char>(g[pos] ^ flip);
    write_file(cut_path, g);
    // Recovery must never throw and never hallucinate: every recovered
    // frame is byte-identical to the original sequence's — a flip either
    // lands past the scan's stopping point or truncates it, but cannot
    // produce a frame that was never written (CRC collisions aside, and a
    // single-byte flip cannot collide CRC-32).
    const JournalRecovery r = recover_journal(cut_path, /*repair=*/false);
    ASSERT_TRUE(r.error.empty()) << "trial " << trial;
    ASSERT_LE(r.payloads.size(), full.size()) << "trial " << trial;
    for (std::size_t i = 0; i < r.payloads.size(); ++i) {
      ASSERT_EQ(r.payloads[i], full[i]) << "trial " << trial;
    }
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// ---- record vocabulary / parse_journal --------------------------------------

// A realistic record stream written through CampaignJournal, then parsed
// back: one completed cell (probes superseded by its cell_done), one
// partial cell (probes + streamed extractions survive as the splice
// prefix), plus driver_state, events, and a session boundary.
TEST(CampaignJournalRecords, ParseJournalReconstructsResumableState) {
  const std::string path = tmp_path("records.journal");
  const core::SearchSpace space(sim::subsystem('B'));
  Rng rng(61);

  Schedule sched;
  sched.workers = 1;
  sched.queues = {{0, 1}};
  const std::string sched_json = schedule_to_json(
      sched, {"B/Diag#0", "B/Diag#1"}, {3600.0, 3600.0});

  std::vector<workload::TraceProbe> done_probes(3);
  std::vector<workload::TraceProbe> partial_probes(2);
  core::Mfs partial_mfs;
  {
    CampaignJournal journal(path, /*journal_every=*/1);
    journal.begin("cell", "sa", /*seed=*/17, /*workers=*/1, "sim",
                  sched_json);
    for (workload::TraceProbe& p : done_probes) {
      p.workload = space.random_point(rng);
      p.measurement.stable = true;
      p.rng_after = rng.state();
      journal.probe("B/Diag#0", p.workload, p.measurement, p.rng_after);
    }
    core::DriverProgress dp;
    dp.phase = "sa";
    dp.experiments = 3;
    journal.driver_state("B/Diag#0", dp.to_json());
    journal.event("lease", "B/Diag#0", /*worker=*/0, /*lease=*/1);

    // The completed cell: its cell_done supersedes the probes above.
    CellResult done;
    done.cell.subsystem = 'B';
    done.worker = 0;
    done.result.experiments = 3;
    done.result.elapsed_seconds = 120.0;
    partial_mfs.witness = space.random_point(rng);
    PoolStats delta;
    delta.entries = 1;
    delta.hits = 2;
    journal.cell_done(done, {PoolEntry{partial_mfs, 0}}, delta, /*lease=*/1);

    // The partial cell: probes and streamed extractions, no cell_done.
    for (workload::TraceProbe& p : partial_probes) {
      p.workload = space.random_point(rng);
      p.rng_after = rng.state();
      journal.probe("B/Diag#1", p.workload, p.measurement, p.rng_after);
    }
    core::Mfs m0 = partial_mfs;
    m0.index = 0;
    core::Mfs m1 = partial_mfs;
    m1.index = 1;
    journal.mfs_batch("B/Diag#1", "B/Diag#1", PoolEntry{m0, 0});
    journal.mfs_batch("B/Diag#1", "B/Diag#1", PoolEntry{m0, 0});  // replayed dup
    journal.mfs_batch("B/Diag#1", "B/Diag#1", PoolEntry{m1, 0});
    journal.resume_marker();
    EXPECT_EQ(journal.probes(), 5);
    EXPECT_EQ(journal.bytes(), read_file(path).size());
  }

  const JournalRecovery rec = recover_journal(path, /*repair=*/true);
  ASSERT_FALSE(rec.torn);
  const JournalResume r = parse_journal(rec.payloads);
  EXPECT_TRUE(r.has_begin);
  EXPECT_EQ(r.share, "cell");
  EXPECT_EQ(r.strategy, "sa");
  EXPECT_EQ(r.backend, "sim");
  EXPECT_EQ(r.seed, 17u);
  EXPECT_EQ(r.workers, 1);
  EXPECT_EQ(r.schedule.workers, 1);
  ASSERT_EQ(r.schedule.queues.size(), 1u);
  EXPECT_EQ(r.schedule.queues[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(r.probes, 5);
  EXPECT_EQ(r.sessions, 2);

  // The completed cell is restored verbatim; its probes are gone.
  ASSERT_EQ(r.completion_order, std::vector<std::string>{"B/Diag#0"});
  const RestoredCell& rc = r.completed.at("B/Diag#0");
  EXPECT_EQ(rc.result.result.experiments, 3);
  EXPECT_DOUBLE_EQ(rc.result.result.elapsed_seconds, 120.0);
  ASSERT_EQ(rc.inserts.size(), 1u);
  EXPECT_EQ(rc.delta.hits, 2);
  EXPECT_EQ(r.partial.count("B/Diag#0"), 0u);

  // The partial cell's probes are the splice prefix, bit-exact.
  ASSERT_EQ(r.partial.count("B/Diag#1"), 1u);
  const std::vector<workload::TraceProbe>& prefix = r.partial.at("B/Diag#1");
  ASSERT_EQ(prefix.size(), partial_probes.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].workload, partial_probes[i].workload);
    EXPECT_EQ(prefix[i].rng_after, partial_probes[i].rng_after);
  }
  ASSERT_EQ(r.partial_inserts.count("B/Diag#1"), 1u);
  EXPECT_EQ(r.partial_inserts.at("B/Diag#1").entries.size(), 3u);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].what, "lease");
  EXPECT_EQ(r.events[0].lease, 1u);
  ASSERT_EQ(r.driver_state.count("B/Diag#0"), 1u);
  EXPECT_EQ(core::DriverProgress::from_json(
                JsonValue::parse(r.driver_state.at("B/Diag#0")).at("state"))
                .experiments,
            3);

  // Checkpoint salvage: the completed cell's inserts land under its scope,
  // the partial cell's streamed extractions dedup by MFS index (the
  // resumed-session double-journal case) and count as knowledge only.
  const CampaignCheckpoint ckpt = journal_to_checkpoint(r);
  EXPECT_EQ(ckpt.share, "cell");
  EXPECT_EQ(ckpt.completed_cells, std::vector<std::string>{"B/Diag#0"});
  ASSERT_EQ(ckpt.scopes.count("B/Diag#0"), 1u);
  EXPECT_EQ(ckpt.scopes.at("B/Diag#0").size(), 1u);
  ASSERT_EQ(ckpt.scopes.count("B/Diag#1"), 1u);
  EXPECT_EQ(ckpt.scopes.at("B/Diag#1").size(), 2u);  // m0 deduped

  std::remove(path.c_str());
}

TEST(CampaignJournalRecords, ParseRejectsUnknownShapesLoudly) {
  // An unknown journal-native record (a journal from a newer build).
  EXPECT_THROW(parse_journal({R"({"record":"hologram"})"}), JsonError);
  // A second begin record (only resume markers may follow a begin).
  const std::string begin =
      R"({"record":"begin","share":"cell","strategy":"sa","seed":1,)"
      R"("workers":1,"backend":"sim","schedule":)"
      R"("{\"workers\":1,\"queues\":[[]],\"labels\":[[]],\"budgets\":[[]]}"})";
  ASSERT_NO_THROW(parse_journal({begin}));
  EXPECT_THROW(parse_journal({begin, begin}), JsonError);
  // A fleet message that is not a cell_done.
  EXPECT_THROW(
      parse_journal({R"({"type":"ack","sender":0,"seq":1,"lease":1})"}),
      JsonError);
  // Not JSON at all.
  EXPECT_THROW(parse_journal({"not json"}), JsonError);
}

// ---- progress documents -----------------------------------------------------

TEST(ProgressDocuments, DriverProgressRoundTripsByteIdentically) {
  core::DriverProgress p;
  p.phase = "sa";
  p.counter_phase = 2;
  p.temperature = 0.375;
  p.experiments = 41;
  p.elapsed_seconds = 1234.5;
  p.mfs_skips = 7;
  p.anomalies = 3;
  const std::string doc = p.to_json();
  const core::DriverProgress back = core::DriverProgress::from_json_text(doc);
  EXPECT_EQ(back.to_json(), doc);
  EXPECT_EQ(back.phase, "sa");
  EXPECT_EQ(back.counter_phase, 2);
  EXPECT_DOUBLE_EQ(back.temperature, 0.375);
  EXPECT_EQ(back.experiments, 41);
  EXPECT_EQ(back.mfs_skips, 7);
  EXPECT_EQ(back.anomalies, 3);
  EXPECT_THROW(core::DriverProgress::from_json_text(doc.substr(0, 10)),
               JsonError);
}

TEST(ProgressDocuments, BoProgressRoundTripsByteIdentically) {
  const core::SearchSpace space(sim::subsystem('F'));
  Rng rng(71);
  baseline::BoProgress p;
  p.phase = "bo";
  p.experiments = 12;
  p.elapsed_seconds = 900.25;
  for (int i = 0; i < 3; ++i) {
    baseline::BoProgress::DesignRow row;
    row.workload = space.random_point(rng);
    for (std::size_t c = 0; c < row.counters.perf.size(); ++c) {
      row.counters.perf[c] = rng.uniform(0.0, 1e9);
    }
    for (std::size_t c = 0; c < row.counters.diag.size(); ++c) {
      row.counters.diag[c] = rng.uniform(0.0, 100.0);
    }
    p.design.push_back(std::move(row));
  }
  const std::string doc = p.to_json();
  const baseline::BoProgress back = baseline::BoProgress::from_json_text(doc);
  EXPECT_EQ(back.to_json(), doc);
  ASSERT_EQ(back.design.size(), 3u);
  for (std::size_t i = 0; i < back.design.size(); ++i) {
    EXPECT_EQ(back.design[i].workload, p.design[i].workload);
    EXPECT_EQ(back.design[i].counters.perf, p.design[i].counters.perf);
    EXPECT_EQ(back.design[i].counters.diag, p.design[i].counters.diag);
  }
  EXPECT_THROW(baseline::BoProgress::from_json_text(doc.substr(0, 25)),
               JsonError);
}

}  // namespace
}  // namespace collie::orchestrator
